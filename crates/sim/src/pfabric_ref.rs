//! A reference implementation of pFabric's queue discipline — the paper's
//! canonical example of an algorithm a PIFO *cannot* express (§3.5).
//!
//! pFabric \[9\] transmits "the earliest packet from the flow with the
//! shortest remaining processing time". Crucially, a new arrival updates
//! the urgency of *all* buffered packets of its flow — a PIFO only lets
//! the arriving element choose its own position. The `repro pfabric`
//! experiment replays §3.5's exact counterexample against both this
//! reference and a PIFO programmed with SRPT, exhibiting the divergence.

use pifo_core::prelude::*;
use std::collections::HashMap;

/// The pFabric reference queue.
///
/// Per-flow FIFOs plus a per-flow "remaining processing time" that is
/// *re-evaluated on every arrival*; dequeue picks the flow with the least
/// remaining time and returns its earliest packet (no intra-flow
/// reordering).
#[derive(Debug, Default)]
pub struct PFabricQueue {
    queues: HashMap<FlowId, std::collections::VecDeque<Packet>>,
    /// Current remaining processing time per flow = the minimum
    /// `remaining` field over its buffered packets (the freshest signal
    /// the end host sent).
    remaining: HashMap<FlowId, u64>,
    len: usize,
    /// Arrival counter used to break ties between flows deterministically
    /// (earliest-arrived head packet first, like pFabric's "earliest").
    arrival_seq: u64,
    head_seq: HashMap<FlowId, u64>,
}

impl PFabricQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a packet; its `remaining` field (set by the end host)
    /// updates the whole flow's urgency.
    pub fn enqueue(&mut self, p: Packet) {
        let f = p.flow;
        let r = self
            .remaining
            .get(&f)
            .map(|&old| old.min(p.remaining))
            .unwrap_or(p.remaining);
        self.remaining.insert(f, r);
        let q = self.queues.entry(f).or_default();
        if q.is_empty() {
            self.head_seq.insert(f, self.arrival_seq);
        }
        self.arrival_seq += 1;
        q.push_back(p);
        self.len += 1;
    }

    /// Dequeue per pFabric: least remaining processing time flow first,
    /// then its earliest packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let f = *self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(f, _)| (self.remaining[f], self.head_seq[f]))
            .map(|(f, _)| f)?;
        let q = self.queues.get_mut(&f).expect("chosen flow exists");
        let p = q.pop_front().expect("non-empty");
        self.len -= 1;
        if q.is_empty() {
            self.queues.remove(&f);
            self.remaining.remove(&f);
            self.head_seq.remove(&f);
        }
        Some(p)
    }

    /// Buffered packet count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// pi(j): packet of flow i with remaining processing time j.
    fn p(id: u64, flow: u32, remaining: u64) -> Packet {
        Packet::new(id, FlowId(flow), 100, Nanos(id)).with_remaining(remaining)
    }

    /// §3.5's literal sequence:
    ///  1. Enqueue p0(7).
    ///  2. Enqueue p1(9), p1(8).
    ///  3. Departure order now: p0(7), p1(9), p1(8).
    ///  4. Enqueue p1(6).
    ///  5. Departure order now: p1(9), p1(8), p1(6), p0(7).
    #[test]
    fn section_3_5_counterexample_order() {
        // Step 3: check the pre-arrival order (on a clone).
        let build_prefix = || {
            let mut q = PFabricQueue::new();
            q.enqueue(p(0, 0, 7));
            q.enqueue(p(1, 1, 9));
            q.enqueue(p(2, 1, 8));
            q
        };
        let mut q = build_prefix();
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|x| x.id.0).collect();
        assert_eq!(order, vec![0, 1, 2], "before p1(6): p0(7), p1(9), p1(8)");

        // Steps 4–5: after p1(6), flow 1 overtakes wholesale.
        let mut q = build_prefix();
        q.enqueue(p(3, 1, 6));
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|x| x.id.0).collect();
        assert_eq!(
            order,
            vec![1, 2, 3, 0],
            "after p1(6): p1(9), p1(8), p1(6), p0(7)"
        );
    }

    #[test]
    fn no_intra_flow_reordering() {
        let mut q = PFabricQueue::new();
        q.enqueue(p(0, 1, 10));
        q.enqueue(p(1, 1, 5));
        q.enqueue(p(2, 1, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|x| x.id.0).collect();
        assert_eq!(order, vec![0, 1, 2], "flow packets stay FIFO");
    }

    #[test]
    fn shorter_flow_wins_ties_by_arrival() {
        let mut q = PFabricQueue::new();
        q.enqueue(p(0, 1, 5));
        q.enqueue(p(1, 2, 5));
        assert_eq!(q.dequeue().unwrap().id.0, 0, "tie -> earliest head");
    }

    #[test]
    fn len_tracks() {
        let mut q = PFabricQueue::new();
        assert!(q.is_empty());
        q.enqueue(p(0, 0, 3));
        q.enqueue(p(1, 1, 2));
        assert_eq!(q.len(), 2);
        q.dequeue();
        assert_eq!(q.len(), 1);
    }
}
