//! Buffer management (§6.1).
//!
//! "Buffer management is largely orthogonal to scheduling, and is
//! implemented using counters that track the occupancies of various
//! flows and ports. Before a packet is enqueued into the scheduler, if
//! any of these counters exceeds a static or dynamic threshold, the
//! packet is dropped."
//!
//! Two admission policies are provided, exactly as the paper sketches:
//!
//! * [`Threshold::Static`] — a fixed per-flow cap;
//! * [`Threshold::Dynamic`] — the Choudhury–Hahne scheme the paper cites
//!   as \[14\]: a flow may use at most `alpha ×` the *remaining free*
//!   buffer, which automatically tightens under pressure and prevents a
//!   single flow from locking everyone else out.
//!
//! [`ManagedScheduler`] wraps any [`PortScheduler`] with such a policy,
//! and [`Red`] implements the other §6.1 option — Random Early Detection
//! \[18\]: probabilistic drops driven by an EWMA of the queue length,
//! seeded for deterministic simulation.

use crate::scheduler::PortScheduler;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// Per-flow admission threshold.
#[derive(Debug, Clone, Copy)]
pub enum Threshold {
    /// A flow may buffer at most this many packets.
    Static(usize),
    /// A flow may buffer at most `alpha × free_space` packets
    /// (Choudhury–Hahne dynamic thresholds \[14\]; `alpha` as a ratio of
    /// numerator/denominator to stay in integer arithmetic).
    Dynamic {
        /// Numerator of alpha.
        num: usize,
        /// Denominator of alpha.
        den: usize,
    },
}

/// Occupancy-tracking admission control over a shared buffer.
#[derive(Debug)]
pub struct SharedBuffer {
    capacity: usize,
    occupancy: usize,
    per_flow: HashMap<FlowId, usize>,
    threshold: Threshold,
    drops: u64,
}

impl SharedBuffer {
    /// A buffer of `capacity` packets with the given per-flow threshold.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or a dynamic denominator is zero.
    pub fn new(capacity: usize, threshold: Threshold) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        if let Threshold::Dynamic { den, .. } = threshold {
            assert!(den > 0, "alpha denominator must be positive");
        }
        SharedBuffer {
            capacity,
            occupancy: 0,
            per_flow: HashMap::new(),
            threshold,
            drops: 0,
        }
    }

    /// Would a packet of `flow` be admitted right now?
    pub fn would_admit(&self, flow: FlowId) -> bool {
        if self.occupancy >= self.capacity {
            return false;
        }
        let used = self.per_flow.get(&flow).copied().unwrap_or(0);
        match self.threshold {
            Threshold::Static(t) => used < t,
            Threshold::Dynamic { num, den } => {
                let free = self.capacity - self.occupancy;
                used < (free * num) / den
            }
        }
    }

    /// Record an admission.
    pub fn on_enqueue(&mut self, flow: FlowId) {
        self.occupancy += 1;
        *self.per_flow.entry(flow).or_insert(0) += 1;
    }

    /// Record a departure.
    pub fn on_dequeue(&mut self, flow: FlowId) {
        self.occupancy = self.occupancy.saturating_sub(1);
        if let Some(c) = self.per_flow.get_mut(&flow) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.per_flow.remove(&flow);
            }
        }
    }

    /// Record a drop.
    pub fn on_drop(&mut self) {
        self.drops += 1;
    }

    /// Packets currently buffered.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Packets of `flow` currently buffered.
    pub fn flow_occupancy(&self, flow: FlowId) -> usize {
        self.per_flow.get(&flow).copied().unwrap_or(0)
    }

    /// Admission-control drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// A [`PortScheduler`] with buffer-management admission control in front
/// of it — the §6.1 composition: thresholds gate the enqueue, the
/// scheduler orders what was admitted.
pub struct ManagedScheduler<S> {
    inner: S,
    buffer: SharedBuffer,
}

impl<S: PortScheduler> ManagedScheduler<S> {
    /// Wrap `inner` behind `buffer`.
    pub fn new(inner: S, buffer: SharedBuffer) -> Self {
        ManagedScheduler { inner, buffer }
    }

    /// The buffer state (occupancies, drops).
    pub fn buffer(&self) -> &SharedBuffer {
        &self.buffer
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PortScheduler> PortScheduler for ManagedScheduler<S> {
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool {
        let flow = pkt.flow;
        if !self.buffer.would_admit(flow) {
            self.buffer.on_drop();
            return false;
        }
        if self.inner.enqueue(pkt, now) {
            self.buffer.on_enqueue(flow);
            true
        } else {
            self.buffer.on_drop();
            false
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        let p = self.inner.dequeue(now)?;
        self.buffer.on_dequeue(p.flow);
        Some(p)
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        self.inner.next_ready(now)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

// ---------------------------------------------------------------------------
// RED (Random Early Detection)
// ---------------------------------------------------------------------------

/// Random Early Detection \[18\] — §6.1's AQM alternative to thresholds.
///
/// Tracks an exponentially-weighted moving average of the queue length;
/// packets are admitted below `min_th`, dropped above `max_th`, and
/// dropped with probability rising linearly to `max_p` in between.
/// Randomness comes from a seeded xorshift, keeping runs reproducible.
#[derive(Debug)]
pub struct Red {
    min_th: f64,
    max_th: f64,
    max_p: f64,
    /// EWMA weight (classic RED default 0.002; we use 1/128).
    weight: f64,
    avg: f64,
    rng: u64,
    drops: u64,
}

impl Red {
    /// RED with thresholds in packets and `max_p` as a fraction (0..1].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_th < max_th` and `0 < max_p <= 1`.
    pub fn new(min_th: usize, max_th: usize, max_p: f64, seed: u64) -> Self {
        assert!(min_th > 0 && min_th < max_th, "need 0 < min_th < max_th");
        assert!(max_p > 0.0 && max_p <= 1.0, "need 0 < max_p <= 1");
        Red {
            min_th: min_th as f64,
            max_th: max_th as f64,
            max_p,
            weight: 1.0 / 128.0,
            avg: 0.0,
            rng: seed | 1,
            drops: 0,
        }
    }

    fn next_uniform(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Admission decision given the instantaneous queue length; updates
    /// the average and the drop counter.
    pub fn admit(&mut self, queue_len: usize) -> bool {
        self.avg = (1.0 - self.weight) * self.avg + self.weight * queue_len as f64;
        let admit = if self.avg < self.min_th {
            true
        } else if self.avg >= self.max_th {
            false
        } else {
            let p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
            self.next_uniform() >= p
        };
        if !admit {
            self.drops += 1;
        }
        admit
    }

    /// Current EWMA of the queue length.
    pub fn average(&self) -> f64 {
        self.avg
    }

    /// RED drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// A [`PortScheduler`] gated by RED: early random drops keep the average
/// queue (and therefore queueing delay) near `min_th` under persistent
/// overload, instead of pinning at the buffer limit like tail drop.
pub struct RedScheduler<S> {
    inner: S,
    red: Red,
}

impl<S: PortScheduler> RedScheduler<S> {
    /// Wrap `inner` behind `red`.
    pub fn new(inner: S, red: Red) -> Self {
        RedScheduler { inner, red }
    }

    /// The RED state.
    pub fn red(&self) -> &Red {
        &self.red
    }
}

impl<S: PortScheduler> PortScheduler for RedScheduler<S> {
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool {
        if !self.red.admit(self.inner.backlog()) {
            return false;
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        self.inner.next_ready(now)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FifoSched;

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 1_000, Nanos(id))
    }

    #[test]
    fn static_threshold_caps_each_flow() {
        let mut s = ManagedScheduler::new(
            FifoSched::new(100),
            SharedBuffer::new(100, Threshold::Static(2)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(s.enqueue(pkt(1, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(2, 1), Nanos(0)), "third of flow 1 dropped");
        assert!(s.enqueue(pkt(3, 2), Nanos(0)), "other flows unaffected");
        assert_eq!(s.buffer().drops(), 1);
        assert_eq!(s.buffer().flow_occupancy(FlowId(1)), 2);
    }

    #[test]
    fn dequeue_frees_headroom() {
        let mut s = ManagedScheduler::new(
            FifoSched::new(100),
            SharedBuffer::new(100, Threshold::Static(1)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(1, 1), Nanos(0)));
        s.dequeue(Nanos(1)).expect("packet");
        assert!(s.enqueue(pkt(2, 1), Nanos(2)), "freed by the dequeue");
    }

    #[test]
    fn dynamic_threshold_tightens_under_pressure() {
        // alpha = 1: a flow may hold at most the current free space.
        let mut b = SharedBuffer::new(8, Threshold::Dynamic { num: 1, den: 1 });
        // Flow 1 fills: each admission shrinks the free space; it
        // converges to half the buffer (used < free).
        let mut admitted = 0;
        while b.would_admit(FlowId(1)) {
            b.on_enqueue(FlowId(1));
            admitted += 1;
            assert!(admitted <= 8, "must converge");
        }
        assert_eq!(admitted, 4, "alpha=1 -> at most half the buffer");
        // A *different* flow still gets in: lockout prevented.
        assert!(b.would_admit(FlowId(2)));
    }

    #[test]
    fn dynamic_threshold_prevents_monopoly_lockout() {
        // The classic tail-drop pathology: one flow owning the whole
        // buffer. With dynamic thresholds a second flow always finds
        // room.
        let mut s = ManagedScheduler::new(
            FifoSched::new(1_000),
            SharedBuffer::new(64, Threshold::Dynamic { num: 1, den: 1 }),
        );
        let mut id = 0;
        for _ in 0..200 {
            let _ = s.enqueue(pkt(id, 1), Nanos(id));
            id += 1;
        }
        assert!(
            s.buffer().flow_occupancy(FlowId(1)) <= 32,
            "hog capped at half"
        );
        assert!(s.enqueue(pkt(id, 2), Nanos(id)), "victim admitted");
    }

    #[test]
    fn shared_capacity_is_hard_limit() {
        let mut b = SharedBuffer::new(4, Threshold::Static(100));
        for f in 0..4u32 {
            assert!(b.would_admit(FlowId(f)));
            b.on_enqueue(FlowId(f));
        }
        assert!(!b.would_admit(FlowId(9)), "buffer full");
        b.on_dequeue(FlowId(0));
        assert!(b.would_admit(FlowId(9)));
        assert_eq!(b.occupancy(), 3);
    }

    #[test]
    fn red_admits_below_min_threshold() {
        let mut red = Red::new(10, 30, 0.1, 42);
        for _ in 0..100 {
            assert!(red.admit(5), "avg stays below min_th");
        }
        assert_eq!(red.drops(), 0);
    }

    #[test]
    fn red_drops_everything_above_max_threshold() {
        let mut red = Red::new(10, 30, 0.1, 42);
        // Drive the average above max_th.
        for _ in 0..2_000 {
            let _ = red.admit(100);
        }
        assert!(red.average() > 30.0);
        assert!(!red.admit(100));
        assert!(!red.admit(100));
    }

    #[test]
    fn red_drops_probabilistically_in_between() {
        let mut red = Red::new(10, 30, 0.5, 7);
        // Hold the instantaneous queue at 20 until the EWMA settles
        // mid-band, then count drops over a window.
        for _ in 0..2_000 {
            let _ = red.admit(20);
        }
        let before = red.drops();
        let mut admitted = 0;
        for _ in 0..1_000 {
            if red.admit(20) {
                admitted += 1;
            }
        }
        let dropped = (red.drops() - before) as usize;
        assert_eq!(admitted + dropped, 1_000);
        // Mid-band at max_p=0.5 -> drop prob ~0.25; allow wide slack.
        assert!(dropped > 100 && dropped < 450, "dropped {dropped}");
    }

    #[test]
    fn red_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut red = Red::new(5, 15, 0.3, seed);
            (0..500).map(|_| red.admit(10)).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seed, different pattern");
    }

    #[test]
    fn red_scheduler_keeps_average_queue_near_threshold() {
        // Persistent 2x overload into a 1000-slot FIFO: tail drop pins
        // the queue at the limit; RED holds the EWMA near max_th.
        let mut red_sched = RedScheduler::new(FifoSched::new(1_000), Red::new(50, 150, 0.2, 3));
        let mut plain = FifoSched::new(1_000);
        let mut id = 0u64;
        for round in 0..5_000u64 {
            // Two arrivals, one departure per round.
            for _ in 0..2 {
                let _ = red_sched.enqueue(pkt(id, (id % 7) as u32), Nanos(round));
                let _ = plain.enqueue(pkt(id, (id % 7) as u32), Nanos(round));
                id += 1;
            }
            let _ = red_sched.dequeue(Nanos(round));
            let _ = plain.dequeue(Nanos(round));
        }
        assert!(
            red_sched.backlog() < 300,
            "RED keeps the queue short: {}",
            red_sched.backlog()
        );
        assert!(
            plain.backlog() >= 999,
            "tail drop pins at the limit: {}",
            plain.backlog()
        );
    }

    #[test]
    fn inner_rejection_counts_as_drop() {
        // Inner scheduler full even though thresholds would admit.
        let mut s = ManagedScheduler::new(
            FifoSched::new(1),
            SharedBuffer::new(100, Threshold::Static(50)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(1, 1), Nanos(0)));
        assert_eq!(s.buffer().drops(), 1);
        assert_eq!(s.buffer().occupancy(), 1, "occupancy not double-counted");
    }
}
