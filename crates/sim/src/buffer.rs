//! Buffer management (§6.1).
//!
//! "Buffer management is largely orthogonal to scheduling, and is
//! implemented using counters that track the occupancies of various
//! flows and ports. Before a packet is enqueued into the scheduler, if
//! any of these counters exceeds a static or dynamic threshold, the
//! packet is dropped."
//!
//! The threshold arithmetic and the counters-only tracker now live in
//! `pifo-core`'s [`pool`](pifo_core::pool) subsystem — alongside the
//! slab-owning [`pifo_core::pool::SharedPacketPool`] that applies the
//! same §6.1 logic **per port** across a whole switch fabric — and are
//! re-exported here unchanged:
//!
//! * [`Threshold::Static`] — a fixed per-flow cap;
//! * [`Threshold::Dynamic`] — the Choudhury–Hahne scheme the paper cites
//!   as \[14\]: a flow may use at most `alpha ×` the *remaining free*
//!   buffer, which automatically tightens under pressure and prevents a
//!   single flow from locking everyone else out.
//!
//! This module keeps the simulator-side compositions: a
//! [`ManagedScheduler`] wraps any [`PortScheduler`] behind a
//! [`SharedBuffer`], and [`Red`] implements the other §6.1 option —
//! Random Early Detection \[18\]: probabilistic drops driven by an EWMA
//! of the queue length, seeded for deterministic simulation.

use crate::scheduler::PortScheduler;
use pifo_core::prelude::*;

pub use pifo_core::pool::{SharedBuffer, Threshold};

/// A [`PortScheduler`] with buffer-management admission control in front
/// of it — the §6.1 composition: thresholds gate the enqueue, the
/// scheduler orders what was admitted.
pub struct ManagedScheduler<S> {
    inner: S,
    buffer: SharedBuffer,
}

impl<S: PortScheduler> ManagedScheduler<S> {
    /// Wrap `inner` behind `buffer`.
    pub fn new(inner: S, buffer: SharedBuffer) -> Self {
        ManagedScheduler { inner, buffer }
    }

    /// The buffer state (occupancies, drops).
    pub fn buffer(&self) -> &SharedBuffer {
        &self.buffer
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PortScheduler> PortScheduler for ManagedScheduler<S> {
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool {
        let flow = pkt.flow;
        if !self.buffer.would_admit(flow) {
            self.buffer.on_drop();
            return false;
        }
        if self.inner.enqueue(pkt, now) {
            self.buffer.on_enqueue(flow);
            true
        } else {
            self.buffer.on_drop();
            false
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        let p = self.inner.dequeue(now)?;
        self.buffer.on_dequeue(p.flow);
        Some(p)
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        self.inner.next_ready(now)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

// ---------------------------------------------------------------------------
// RED (Random Early Detection)
// ---------------------------------------------------------------------------

/// Random Early Detection \[18\] — §6.1's AQM alternative to thresholds.
///
/// Tracks an exponentially-weighted moving average of the queue length;
/// packets are admitted below `min_th`, dropped above `max_th`, and
/// dropped with probability rising linearly to `max_p` in between.
/// Randomness comes from a seeded xorshift, keeping runs reproducible.
#[derive(Debug)]
pub struct Red {
    min_th: f64,
    max_th: f64,
    max_p: f64,
    /// EWMA weight (classic RED default 0.002; we use 1/128).
    weight: f64,
    avg: f64,
    rng: u64,
    drops: u64,
}

impl Red {
    /// RED with thresholds in packets and `max_p` as a fraction (0..1].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_th < max_th` and `0 < max_p <= 1`.
    pub fn new(min_th: usize, max_th: usize, max_p: f64, seed: u64) -> Self {
        assert!(min_th > 0 && min_th < max_th, "need 0 < min_th < max_th");
        assert!(max_p > 0.0 && max_p <= 1.0, "need 0 < max_p <= 1");
        Red {
            min_th: min_th as f64,
            max_th: max_th as f64,
            max_p,
            weight: 1.0 / 128.0,
            avg: 0.0,
            rng: seed | 1,
            drops: 0,
        }
    }

    fn next_uniform(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Admission decision given the instantaneous queue length; updates
    /// the average and the drop counter.
    pub fn admit(&mut self, queue_len: usize) -> bool {
        self.avg = (1.0 - self.weight) * self.avg + self.weight * queue_len as f64;
        let admit = if self.avg < self.min_th {
            true
        } else if self.avg >= self.max_th {
            false
        } else {
            let p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
            self.next_uniform() >= p
        };
        if !admit {
            self.drops += 1;
        }
        admit
    }

    /// Current EWMA of the queue length.
    pub fn average(&self) -> f64 {
        self.avg
    }

    /// RED drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// A [`PortScheduler`] gated by RED: early random drops keep the average
/// queue (and therefore queueing delay) near `min_th` under persistent
/// overload, instead of pinning at the buffer limit like tail drop.
pub struct RedScheduler<S> {
    inner: S,
    red: Red,
}

impl<S: PortScheduler> RedScheduler<S> {
    /// Wrap `inner` behind `red`.
    pub fn new(inner: S, red: Red) -> Self {
        RedScheduler { inner, red }
    }

    /// The RED state.
    pub fn red(&self) -> &Red {
        &self.red
    }
}

impl<S: PortScheduler> PortScheduler for RedScheduler<S> {
    fn enqueue(&mut self, pkt: Packet, now: Nanos) -> bool {
        if !self.red.admit(self.inner.backlog()) {
            return false;
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        self.inner.next_ready(now)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FifoSched;

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 1_000, Nanos(id))
    }

    #[test]
    fn static_threshold_caps_each_flow() {
        let mut s = ManagedScheduler::new(
            FifoSched::new(100),
            SharedBuffer::new(100, Threshold::Static(2)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(s.enqueue(pkt(1, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(2, 1), Nanos(0)), "third of flow 1 dropped");
        assert!(s.enqueue(pkt(3, 2), Nanos(0)), "other flows unaffected");
        assert_eq!(s.buffer().drops(), 1);
        assert_eq!(s.buffer().flow_occupancy(FlowId(1)), 2);
    }

    #[test]
    fn dequeue_frees_headroom() {
        let mut s = ManagedScheduler::new(
            FifoSched::new(100),
            SharedBuffer::new(100, Threshold::Static(1)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(1, 1), Nanos(0)));
        s.dequeue(Nanos(1)).expect("packet");
        assert!(s.enqueue(pkt(2, 1), Nanos(2)), "freed by the dequeue");
    }

    #[test]
    fn dynamic_threshold_prevents_monopoly_lockout() {
        // The classic tail-drop pathology: one flow owning the whole
        // buffer. With dynamic thresholds a second flow always finds
        // room.
        let mut s = ManagedScheduler::new(
            FifoSched::new(1_000),
            SharedBuffer::new(64, Threshold::Dynamic { num: 1, den: 1 }),
        );
        let mut id = 0;
        for _ in 0..200 {
            let _ = s.enqueue(pkt(id, 1), Nanos(id));
            id += 1;
        }
        assert!(
            s.buffer().flow_occupancy(FlowId(1)) <= 32,
            "hog capped at half"
        );
        assert!(s.enqueue(pkt(id, 2), Nanos(id)), "victim admitted");
    }

    #[test]
    fn red_admits_below_min_threshold() {
        let mut red = Red::new(10, 30, 0.1, 42);
        for _ in 0..100 {
            assert!(red.admit(5), "avg stays below min_th");
        }
        assert_eq!(red.drops(), 0);
    }

    #[test]
    fn red_drops_everything_above_max_threshold() {
        let mut red = Red::new(10, 30, 0.1, 42);
        // Drive the average above max_th.
        for _ in 0..2_000 {
            let _ = red.admit(100);
        }
        assert!(red.average() > 30.0);
        assert!(!red.admit(100));
        assert!(!red.admit(100));
    }

    #[test]
    fn red_drops_probabilistically_in_between() {
        let mut red = Red::new(10, 30, 0.5, 7);
        // Hold the instantaneous queue at 20 until the EWMA settles
        // mid-band, then count drops over a window.
        for _ in 0..2_000 {
            let _ = red.admit(20);
        }
        let before = red.drops();
        let mut admitted = 0;
        for _ in 0..1_000 {
            if red.admit(20) {
                admitted += 1;
            }
        }
        let dropped = (red.drops() - before) as usize;
        assert_eq!(admitted + dropped, 1_000);
        // Mid-band at max_p=0.5 -> drop prob ~0.25; allow wide slack.
        assert!(dropped > 100 && dropped < 450, "dropped {dropped}");
    }

    #[test]
    fn red_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut red = Red::new(5, 15, 0.3, seed);
            (0..500).map(|_| red.admit(10)).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seed, different pattern");
    }

    #[test]
    fn red_scheduler_keeps_average_queue_near_threshold() {
        // Persistent 2x overload into a 1000-slot FIFO: tail drop pins
        // the queue at the limit; RED holds the EWMA near max_th.
        let mut red_sched = RedScheduler::new(FifoSched::new(1_000), Red::new(50, 150, 0.2, 3));
        let mut plain = FifoSched::new(1_000);
        let mut id = 0u64;
        for round in 0..5_000u64 {
            // Two arrivals, one departure per round.
            for _ in 0..2 {
                let _ = red_sched.enqueue(pkt(id, (id % 7) as u32), Nanos(round));
                let _ = plain.enqueue(pkt(id, (id % 7) as u32), Nanos(round));
                id += 1;
            }
            let _ = red_sched.dequeue(Nanos(round));
            let _ = plain.dequeue(Nanos(round));
        }
        assert!(
            red_sched.backlog() < 300,
            "RED keeps the queue short: {}",
            red_sched.backlog()
        );
        assert!(
            plain.backlog() >= 999,
            "tail drop pins at the limit: {}",
            plain.backlog()
        );
    }

    #[test]
    fn inner_rejection_counts_as_drop() {
        // Inner scheduler full even though thresholds would admit.
        let mut s = ManagedScheduler::new(
            FifoSched::new(1),
            SharedBuffer::new(100, Threshold::Static(50)),
        );
        assert!(s.enqueue(pkt(0, 1), Nanos(0)));
        assert!(!s.enqueue(pkt(1, 1), Nanos(0)));
        assert_eq!(s.buffer().drops(), 1);
        assert_eq!(s.buffer().occupancy(), 1, "occupancy not double-counted");
    }
}
