//! A single switch output port: the event loop that drives a
//! [`PortScheduler`] against a link of fixed rate.
//!
//! The port is the boundary between *scheduling decisions* (the
//! scheduler's job) and *transmission* (the link's): it enqueues arrivals
//! at their arrival times, asks the scheduler for the next packet whenever
//! the link is free, and accounts each transmission at the link rate.

use crate::scheduler::PortScheduler;
use pifo_core::prelude::*;

/// One transmitted packet with its port-level timing.
///
/// Equality is full-struct (packet, start, finish, wait) — what the
/// trace bit-identity tests compare departure for departure. That
/// contract is why telemetry never adds fields here: per-packet path
/// records live in a side channel
/// ([`PortTrace::paths`](crate::switch::PortTrace::paths),
/// index-aligned with the departures), so a telemetry-on trace stays
/// byte-comparable to a telemetry-off one. `wait` reconciles exactly
/// with the telemetry layer's
/// [`PathRecord::wait`](pifo_core::telemetry::PathRecord::wait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Departure {
    /// The packet as it left (fields may have been updated, e.g. LSTF
    /// slack charging).
    pub packet: Packet,
    /// When transmission began.
    pub start: Nanos,
    /// When the last bit left (start + length/rate).
    pub finish: Nanos,
    /// Queueing wait: `start - packet.arrival`.
    pub wait: Nanos,
}

/// Configuration for a port run.
#[derive(Debug, Clone)]
pub struct PortConfig {
    /// Link rate in bits/second.
    pub rate_bps: u64,
    /// Simulation horizon: packets not transmitted by then stay queued.
    pub horizon: Nanos,
    /// Charge LSTF slack (Fig 6: `slack -= wait`) on each departure.
    pub charge_lstf_slack: bool,
}

impl PortConfig {
    /// A work-conserving port at `rate_bps` with a long horizon.
    pub fn new(rate_bps: u64) -> Self {
        PortConfig {
            rate_bps,
            horizon: Nanos::from_secs(3_600),
            charge_lstf_slack: false,
        }
    }

    /// Set the simulation horizon.
    pub fn with_horizon(mut self, horizon: Nanos) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enable LSTF slack charging at departure.
    pub fn with_lstf_charging(mut self) -> Self {
        self.charge_lstf_slack = true;
        self
    }
}

/// Run `arrivals` (sorted by arrival time) through `sched` on a link
/// described by `cfg`. Returns the departures in transmission order.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted by arrival time.
pub fn run_port(
    arrivals: &[Packet],
    sched: &mut dyn PortScheduler,
    cfg: &PortConfig,
) -> Vec<Departure> {
    assert!(
        arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "arrivals must be time-sorted"
    );
    let mut out = Vec::with_capacity(arrivals.len());
    let mut i = 0;
    // The next instant the link could begin a transmission.
    let mut t = arrivals.first().map(|p| p.arrival).unwrap_or(Nanos::ZERO);

    loop {
        if t >= cfg.horizon {
            break;
        }
        // Everything that has arrived by `t` enters the scheduler, at its
        // own arrival time (transactions read `now`).
        while i < arrivals.len() && arrivals[i].arrival <= t {
            let p = arrivals[i].clone();
            let at = p.arrival;
            sched.enqueue(p, at);
            i += 1;
        }

        match sched.dequeue(t) {
            Some(mut p) => {
                let finish = t + tx_time(p.length as u64, cfg.rate_bps);
                let wait = t.saturating_sub(p.arrival);
                if cfg.charge_lstf_slack {
                    p.slack -= wait.as_nanos() as i64;
                }
                out.push(Departure {
                    packet: p,
                    start: t,
                    finish,
                    wait,
                });
                t = finish;
            }
            None => {
                // Idle: jump to the next arrival or shaping release.
                let next_arrival = arrivals.get(i).map(|p| p.arrival);
                let next_ready = sched.next_ready(t);
                let next = match (next_arrival, next_ready) {
                    (Some(a), Some(r)) => a.min(r),
                    (Some(a), None) => a,
                    (None, Some(r)) => r,
                    (None, None) => break, // drained
                };
                debug_assert!(next > t, "port must make progress (t={t}, next={next})");
                t = next.max(Nanos(t.as_nanos() + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FifoSched;

    fn pkts(times_lens: &[(u64, u32)]) -> Vec<Packet> {
        times_lens
            .iter()
            .enumerate()
            .map(|(i, &(t, l))| Packet::new(i as u64, FlowId(0), l, Nanos(t)))
            .collect()
    }

    #[test]
    fn back_to_back_transmissions_pack_the_link() {
        // 1000 B at 8 Gb/s = 1000 ns each; both arrive at t=0.
        let arr = pkts(&[(0, 1_000), (0, 1_000)]);
        let mut s = FifoSched::new(10);
        let out = run_port(&arr, &mut s, &PortConfig::new(8_000_000_000));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, Nanos(0));
        assert_eq!(out[0].finish, Nanos(1_000));
        assert_eq!(out[1].start, Nanos(1_000));
        assert_eq!(out[1].finish, Nanos(2_000));
        assert_eq!(out[1].wait, Nanos(1_000));
    }

    #[test]
    fn idle_link_waits_for_arrivals() {
        let arr = pkts(&[(0, 1_000), (10_000, 1_000)]);
        let mut s = FifoSched::new(10);
        let out = run_port(&arr, &mut s, &PortConfig::new(8_000_000_000));
        assert_eq!(out[1].start, Nanos(10_000), "link idles until arrival");
        assert_eq!(out[1].wait, Nanos::ZERO);
    }

    #[test]
    fn horizon_cuts_off() {
        let arr = pkts(&[(0, 1_000), (0, 1_000), (0, 1_000)]);
        let mut s = FifoSched::new(10);
        let cfg = PortConfig::new(8_000_000_000).with_horizon(Nanos(1_500));
        let out = run_port(&arr, &mut s, &cfg);
        assert_eq!(out.len(), 2, "third packet would start at 2000 > horizon");
        assert_eq!(s.backlog(), 1);
    }

    #[test]
    fn lstf_charging_updates_slack() {
        let mut arr = pkts(&[(0, 1_000), (0, 1_000)]);
        arr[0].slack = 10_000;
        arr[1].slack = 10_000;
        let mut s = FifoSched::new(10);
        let cfg = PortConfig::new(8_000_000_000).with_lstf_charging();
        let out = run_port(&arr, &mut s, &cfg);
        assert_eq!(out[0].packet.slack, 10_000, "no wait, no charge");
        assert_eq!(out[1].packet.slack, 10_000 - 1_000, "charged 1000 ns wait");
    }

    #[test]
    fn utilisation_accounts_every_byte() {
        // 100 packets of 1500 B at 10 Gb/s, all at t=0: the link must
        // finish at exactly 100 * 1200 ns.
        let arr: Vec<Packet> = (0..100)
            .map(|i| Packet::new(i, FlowId(0), 1_500, Nanos(0)))
            .collect();
        let mut s = FifoSched::new(1_000);
        let out = run_port(&arr, &mut s, &PortConfig::new(10_000_000_000));
        assert_eq!(out.last().unwrap().finish, Nanos(100 * 1_200));
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_arrivals_rejected() {
        let arr = pkts(&[(100, 100), (0, 100)]);
        let mut s = FifoSched::new(10);
        let _ = run_port(&arr, &mut s, &PortConfig::new(1_000_000));
    }
}
