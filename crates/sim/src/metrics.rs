//! Measurement utilities: per-flow throughput, latency percentiles, flow
//! completion times, and Jain's fairness index.

use crate::port::Departure;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// Per-flow bytes transmitted inside a window, and the implied rates.
#[derive(Debug, Clone, Default)]
pub struct ThroughputReport {
    /// Bytes per flow inside the window.
    pub bytes: HashMap<FlowId, u64>,
    /// Window length.
    pub window: Nanos,
}

impl ThroughputReport {
    /// The measured rate of `flow` in bits/second.
    pub fn rate_bps(&self, flow: FlowId) -> f64 {
        let b = self.bytes.get(&flow).copied().unwrap_or(0);
        if self.window == Nanos::ZERO {
            return 0.0;
        }
        (b as f64 * 8.0) / self.window.as_secs_f64()
    }

    /// The fraction of `total` bytes that went to `flow`.
    pub fn share(&self, flow: FlowId) -> f64 {
        let total: u64 = self.bytes.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.bytes.get(&flow).copied().unwrap_or(0) as f64 / total as f64
    }
}

/// Tally bytes per flow for departures whose *finish* lies in
/// `[from, to)`.
pub fn throughput(departures: &[Departure], from: Nanos, to: Nanos) -> ThroughputReport {
    let mut bytes: HashMap<FlowId, u64> = HashMap::new();
    for d in departures {
        if d.finish >= from && d.finish < to {
            *bytes.entry(d.packet.flow).or_insert(0) += d.packet.length as u64;
        }
    }
    ThroughputReport {
        bytes,
        window: to.saturating_sub(from),
    }
}

/// Throughput time-series: per-flow rates in consecutive buckets of
/// `bucket` length over `[0, horizon)`. Returns one report per bucket.
pub fn throughput_series(
    departures: &[Departure],
    bucket: Nanos,
    horizon: Nanos,
) -> Vec<ThroughputReport> {
    assert!(bucket > Nanos::ZERO, "bucket must be positive");
    let n = horizon.as_nanos().div_ceil(bucket.as_nanos());
    let mut out = Vec::with_capacity(n as usize);
    for k in 0..n {
        let from = Nanos(k * bucket.as_nanos());
        let to = Nanos(((k + 1) * bucket.as_nanos()).min(horizon.as_nanos()));
        out.push(throughput(departures, from, to));
    }
    out
}

/// Summary statistics over a set of latency (or any duration) samples.
///
/// Percentiles use the **nearest-rank** convention: the p-th percentile
/// of `n` sorted samples is the sample at rank `⌈(p/100)·n⌉` (1-based,
/// clamped to `[1, n]`). Every reported percentile is therefore an
/// *actual sample value*, never an interpolation: with one sample every
/// percentile is that sample; with `n = 10`, p99 is the maximum
/// (`⌈0.99·10⌉ = 10`); tied values are reported as-is. This is the
/// convention the telemetry layer's per-packet residence times are
/// summarized with, so telemetry-derived and departure-derived
/// percentiles agree exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, ns.
    pub mean_ns: f64,
    /// Median, ns (nearest-rank).
    pub p50_ns: u64,
    /// 99th percentile, ns (nearest-rank).
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

/// Compute latency statistics from raw nanosecond samples
/// (nearest-rank percentiles — see [`LatencyStats`]).
/// Returns `None` for an empty sample set.
pub fn latency_stats(samples: &[u64]) -> Option<LatencyStats> {
    if samples.is_empty() {
        return None;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let count = v.len();
    let sum: u128 = v.iter().map(|&x| x as u128).sum();
    Some(LatencyStats {
        count,
        mean_ns: sum as f64 / count as f64,
        p50_ns: v[percentile_index(count, 50.0)],
        p99_ns: v[percentile_index(count, 99.0)],
        max_ns: v[count - 1],
    })
}

/// Index of the p-th percentile in a sorted array of `n` samples:
/// nearest-rank `⌈(p/100)·n⌉`, 1-based, clamped to `[1, n]`, returned
/// 0-based.
fn percentile_index(n: usize, p: f64) -> usize {
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Queueing waits (ns) of all departures of `flow` (or all, if `None`).
pub fn waits_of(departures: &[Departure], flow: Option<FlowId>) -> Vec<u64> {
    departures
        .iter()
        .filter(|d| flow.map_or(true, |f| d.packet.flow == f))
        .map(|d| d.wait.as_nanos())
        .collect()
}

/// One completed flow: size and completion time.
#[derive(Debug, Clone, Copy)]
pub struct FlowCompletion {
    /// Flow id.
    pub flow: FlowId,
    /// Total bytes observed.
    pub bytes: u64,
    /// First packet arrival.
    pub start: Nanos,
    /// Last packet finish.
    pub end: Nanos,
}

impl FlowCompletion {
    /// Flow completion time.
    pub fn fct(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// Extract flow completion times from a departure log. A flow "completes"
/// when its last observed packet finishes; flows with packets still queued
/// at the horizon are omitted when `expected_bytes` (from the workload
/// spec) says they are incomplete.
pub fn flow_completions(
    departures: &[Departure],
    expected_bytes: &HashMap<FlowId, u64>,
) -> Vec<FlowCompletion> {
    let mut agg: HashMap<FlowId, (u64, Nanos, Nanos)> = HashMap::new();
    for d in departures {
        let e = agg
            .entry(d.packet.flow)
            .or_insert((0, d.packet.arrival, d.finish));
        e.0 += d.packet.length as u64;
        e.1 = e.1.min(d.packet.arrival);
        e.2 = e.2.max(d.finish);
    }
    let mut out: Vec<FlowCompletion> = agg
        .into_iter()
        .filter(|(f, (bytes, _, _))| expected_bytes.get(f).map_or(true, |&e| *bytes >= e))
        .map(|(flow, (bytes, start, end))| FlowCompletion {
            flow,
            bytes,
            start,
            end,
        })
        .collect();
    out.sort_by_key(|c| c.flow);
    out
}

/// Jain's fairness index over a set of allocations:
/// `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(flow: u32, len: u32, arrival: u64, start: u64, finish: u64) -> Departure {
        Departure {
            packet: Packet::new(0, FlowId(flow), len, Nanos(arrival)),
            start: Nanos(start),
            finish: Nanos(finish),
            wait: Nanos(start - arrival),
        }
    }

    #[test]
    fn throughput_counts_window_only() {
        let deps = vec![
            dep(1, 1_000, 0, 0, 100),
            dep(1, 1_000, 0, 100, 250),
            dep(2, 500, 0, 250, 300),
        ];
        let r = throughput(&deps, Nanos(0), Nanos(200));
        assert_eq!(r.bytes[&FlowId(1)], 1_000);
        assert!(!r.bytes.contains_key(&FlowId(2)));
    }

    #[test]
    fn rate_and_share() {
        let deps = vec![dep(1, 1_000, 0, 0, 100), dep(2, 3_000, 0, 100, 200)];
        let r = throughput(&deps, Nanos(0), Nanos(1_000));
        // 1000 B in 1 us = 8 Gb/s.
        assert!((r.rate_bps(FlowId(1)) - 8e9).abs() < 1.0);
        assert!((r.share(FlowId(2)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn series_buckets_cover_horizon() {
        let deps = vec![dep(1, 100, 0, 0, 50), dep(1, 100, 0, 950, 1_050)];
        let s = throughput_series(&deps, Nanos(500), Nanos(1_500));
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].bytes.get(&FlowId(1)), Some(&100));
        assert_eq!(s[2].bytes.get(&FlowId(1)), Some(&100));
    }

    #[test]
    fn latency_percentiles() {
        let samples: Vec<u64> = (1..=100).collect();
        let st = latency_stats(&samples).unwrap();
        assert_eq!(st.count, 100);
        assert_eq!(st.p50_ns, 50);
        assert_eq!(st.p99_ns, 99);
        assert_eq!(st.max_ns, 100);
        assert!((st.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_empty_is_none() {
        assert!(latency_stats(&[]).is_none());
    }

    #[test]
    fn single_sample_stats() {
        let st = latency_stats(&[7]).unwrap();
        assert_eq!(st.p50_ns, 7);
        assert_eq!(st.p99_ns, 7);
        assert_eq!(st.max_ns, 7);
    }

    /// Nearest-rank boundary behaviour: p99 on tiny sample sets is the
    /// maximum (rank ⌈0.99·n⌉ = n for n ≤ 100), and p50 sits at rank
    /// ⌈n/2⌉ — the lower-middle sample for even n, never interpolated.
    #[test]
    fn tiny_samples_use_nearest_rank() {
        for n in [2usize, 3, 5, 10] {
            let samples: Vec<u64> = (1..=n as u64).collect();
            let st = latency_stats(&samples).unwrap();
            assert_eq!(st.p99_ns, n as u64, "p99 of n={n} is the max");
            assert_eq!(st.p50_ns, n.div_ceil(2) as u64, "p50 of n={n}");
        }
        // 101 samples: rank ⌈0.99·101⌉ = 100 — the first n where p99
        // drops below the maximum.
        let samples: Vec<u64> = (1..=101).collect();
        let st = latency_stats(&samples).unwrap();
        assert_eq!(st.p99_ns, 100);
        assert_eq!(st.max_ns, 101);
    }

    /// Ties are reported as-is: the percentile is always one of the
    /// sample values, and a run of equal samples spanning the rank
    /// yields that value.
    #[test]
    fn tied_samples_report_the_tied_value() {
        let st = latency_stats(&[5, 5, 5, 5]).unwrap();
        assert_eq!(st.p50_ns, 5);
        assert_eq!(st.p99_ns, 5);
        let st = latency_stats(&[1, 9, 9, 9]).unwrap();
        assert_eq!(st.p50_ns, 9, "rank 2 of [1,9,9,9]");
        assert_eq!(st.p99_ns, 9);
    }

    #[test]
    fn completions_filter_incomplete_flows() {
        let deps = vec![dep(1, 1_000, 0, 0, 100), dep(2, 500, 0, 100, 200)];
        let mut expected = HashMap::new();
        expected.insert(FlowId(1), 1_000u64);
        expected.insert(FlowId(2), 9_999u64); // flow 2 incomplete
        let fc = flow_completions(&deps, &expected);
        assert_eq!(fc.len(), 1);
        assert_eq!(fc[0].flow, FlowId(1));
        assert_eq!(fc[0].fct(), Nanos(100));
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogs everything among 4: index -> 1/4.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
    }
}
