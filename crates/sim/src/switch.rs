//! A multi-port, shared-memory switch fabric: one classifier feeding N
//! egress ports, each owning a [`ScheduleTree`] drained at line rate.
//!
//! The paper's hardware serves many ports from one PIFO mesh at line
//! rate (§4–§5); single-queue microbenchmarks hide the behaviour that
//! emerges when a classifier sprays bursty, incast-prone traffic across
//! many queues. This module is the software analogue of that fabric:
//!
//! * a **shared classifier** ([`PortClassifier`]) maps every arriving
//!   packet to its egress port;
//! * each **port** owns one scheduling tree (any [`PifoBackend`], any
//!   transaction program — ports may differ);
//! * a **line-rate drain loop** transmits from every port at the
//!   configured link rate, in scheduling rounds of up to
//!   [`SwitchBuilder::with_burst`] packets.
//!
//! # Scheduling rounds and the batched hot path
//!
//! Ports make decisions at *round* granularity: at round time `t` the
//! port admits everything that has arrived by `t` and then commits up to
//! `burst` packets, all decided at `t`, transmitted back-to-back. The
//! [`DrainMode`] chooses how each round talks to the tree:
//!
//! * [`DrainMode::PerPacket`] — one [`ScheduleTree::enqueue`] /
//!   [`ScheduleTree::dequeue`] call per packet (the reference path);
//! * [`DrainMode::Batched`] — [`ScheduleTree::enqueue_batch`] per
//!   arrival instant and one [`ScheduleTree::dequeue_upto`] per round,
//!   which reaches the engines' amortized
//!   [`push_batch`](pifo_core::pifo::PifoQueue::push_batch)/
//!   [`pop_batch`](pifo_core::pifo::PifoQueue::pop_batch)
//!   implementations.
//!
//! Both modes make **exactly the same decisions**: the batched APIs are
//! byte-identical to their sequential expansion at a fixed decision
//! time, so per-port departure traces agree bit for bit — asserted for
//! every backend by `batched_and_per_packet_traces_identical` below and
//! by the `switch_fabric` bench's cross-check. The batch buys
//! throughput, never different behaviour.

use crate::port::Departure;
use pifo_core::prelude::*;

/// Maps a packet to the egress port that must transmit it — the shared
/// classification step in front of the fabric. Out-of-range ports count
/// as misroutes (the packet is dropped and tallied in
/// [`SwitchRun::misrouted`]).
pub type PortClassifier = Box<dyn Fn(&Packet) -> usize>;

/// How a port's scheduling rounds talk to its tree (see the module docs;
/// the two modes produce byte-identical departure traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainMode {
    /// One `enqueue`/`dequeue` call per packet — the reference path.
    #[default]
    PerPacket,
    /// `enqueue_batch` per arrival instant, `dequeue_upto` per round —
    /// the amortized path.
    Batched,
}

impl DrainMode {
    /// Short stable label for reports (`per_packet` / `batched`).
    pub fn label(self) -> &'static str {
        match self {
            DrainMode::PerPacket => "per_packet",
            DrainMode::Batched => "batched",
        }
    }
}

/// Builder for [`Switch`]: add one scheduling tree per egress port, then
/// [`build`](Self::build) with the shared classifier.
///
/// ```
/// use pifo_core::prelude::*;
/// use pifo_sim::switch::{DrainMode, SwitchBuilder};
///
/// // Two FIFO ports behind a flow-hash classifier.
/// let mut sb = SwitchBuilder::new(8_000_000_000); // 8 Gb/s per port
/// for _ in 0..2 {
///     let mut b = TreeBuilder::new();
///     let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
///         Rank(ctx.now.as_nanos())
///     })));
///     sb.add_port(b.build(Box::new(move |_| root)).unwrap());
/// }
/// let mut switch = sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 2));
///
/// let arrivals: Vec<Packet> = (0..4)
///     .map(|i| Packet::new(i, FlowId(i as u32), 1_000, Nanos(i)))
///     .collect();
/// let run = switch.run(&arrivals, DrainMode::Batched);
/// assert_eq!(run.total_departures(), 4);
/// assert_eq!(run.ports[0].departures.len(), 2); // flows 0, 2
/// assert_eq!(run.ports[1].departures.len(), 2); // flows 1, 3
/// ```
pub struct SwitchBuilder {
    trees: Vec<ScheduleTree>,
    rate_bps: u64,
    horizon: Nanos,
    burst: usize,
}

impl SwitchBuilder {
    /// A switch whose ports each transmit at `rate_bps`, with a long
    /// horizon and the default scheduling round of 32 packets.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        SwitchBuilder {
            trees: Vec::new(),
            rate_bps,
            horizon: Nanos::from_secs(3_600),
            burst: 32,
        }
    }

    /// Add an egress port owning `tree`; returns the port index the
    /// classifier must use for it (assigned densely from 0).
    pub fn add_port(&mut self, tree: ScheduleTree) -> usize {
        self.trees.push(tree);
        self.trees.len() - 1
    }

    /// Set the simulation horizon: no scheduling round *starts* at or
    /// after it (a round in flight may finish past it).
    pub fn with_horizon(&mut self, horizon: Nanos) -> &mut Self {
        self.horizon = horizon;
        self
    }

    /// Packets committed per scheduling round (default 32). Both drain
    /// modes use the same round size — it defines the decision epochs,
    /// while [`DrainMode`] only chooses the API used inside a round.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn with_burst(&mut self, burst: usize) -> &mut Self {
        assert!(burst > 0, "a scheduling round must commit >= 1 packet");
        self.burst = burst;
        self
    }

    /// Finish construction with the shared classifier.
    ///
    /// # Panics
    ///
    /// Panics if no port was added.
    pub fn build(self, classifier: PortClassifier) -> Switch {
        assert!(!self.trees.is_empty(), "a switch needs at least one port");
        Switch {
            ports: self.trees,
            classifier,
            rate_bps: self.rate_bps,
            horizon: self.horizon,
            burst: self.burst,
        }
    }
}

/// The multi-port fabric (see the module docs). Built by
/// [`SwitchBuilder`]; driven by [`run`](Self::run).
pub struct Switch {
    ports: Vec<ScheduleTree>,
    classifier: PortClassifier,
    rate_bps: u64,
    horizon: Nanos,
    burst: usize,
}

/// What one egress port did during a [`Switch::run`].
#[derive(Debug, Clone, Default)]
pub struct PortTrace {
    /// Every transmitted packet with its timing, in transmission order.
    pub departures: Vec<Departure>,
    /// Packets this port's tree rejected (buffer full / unknown flow).
    pub drops: u64,
}

/// The result of one [`Switch::run`]: per-port traces plus fabric-level
/// counters.
#[derive(Debug, Clone, Default)]
pub struct SwitchRun {
    /// One trace per port, indexed like the builder's ports.
    pub ports: Vec<PortTrace>,
    /// Packets the classifier sent to a non-existent port.
    pub misrouted: u64,
}

impl SwitchRun {
    /// Total packets transmitted across every port.
    pub fn total_departures(&self) -> usize {
        self.ports.iter().map(|p| p.departures.len()).sum()
    }

    /// Total packets dropped by port trees (excluding misroutes).
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.drops).sum()
    }

    /// The instant the last bit left the fabric, across all ports.
    pub fn last_finish(&self) -> Nanos {
        self.ports
            .iter()
            .filter_map(|p| p.departures.last())
            .map(|d| d.finish)
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

impl Switch {
    /// Number of egress ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Read-only view of port `i`'s scheduling tree.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port(&self, i: usize) -> &ScheduleTree {
        &self.ports[i]
    }

    /// Run `arrivals` (time-sorted) through the fabric with the given
    /// drain mode, returning the per-port departure traces.
    ///
    /// Ports are independent once classified (each owns its tree and
    /// link), so the loop simulates them port by port; determinism is
    /// total — identical inputs give bit-identical traces.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted by arrival time.
    pub fn run(&mut self, arrivals: &[Packet], mode: DrainMode) -> SwitchRun {
        assert!(
            arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrivals must be time-sorted"
        );
        // Shared classification: split the arrival stream per port,
        // preserving arrival order (stable).
        let mut per_port: Vec<Vec<Packet>> = (0..self.ports.len()).map(|_| Vec::new()).collect();
        let mut misrouted = 0u64;
        for p in arrivals {
            let port = (self.classifier)(p);
            match per_port.get_mut(port) {
                Some(q) => q.push(p.clone()),
                None => misrouted += 1,
            }
        }

        let mut run = SwitchRun {
            ports: Vec::with_capacity(self.ports.len()),
            misrouted,
        };
        for (tree, arr) in self.ports.iter_mut().zip(per_port) {
            run.ports.push(drain_port(
                tree,
                arr,
                self.rate_bps,
                self.horizon,
                self.burst,
                mode,
            ));
        }
        run
    }
}

/// The per-port line-rate drain loop shared by both drain modes: admit
/// everything arrived by `t`, commit one scheduling round at `t`,
/// transmit back-to-back, repeat; when idle, hop to the next arrival or
/// shaping release.
fn drain_port(
    tree: &mut ScheduleTree,
    arrivals: Vec<Packet>,
    rate_bps: u64,
    horizon: Nanos,
    burst: usize,
    mode: DrainMode,
) -> PortTrace {
    let mut trace = PortTrace::default();
    let mut t = match arrivals.first() {
        Some(p) => p.arrival,
        None if tree.is_empty() && tree.shaped_len() == 0 => return trace,
        None => Nanos::ZERO,
    };
    // The port owns its arrivals: packets move (never clone) from the
    // classified stream into the tree.
    let mut pending = arrivals.into_iter().peekable();
    // Reused across rounds so the steady state allocates nothing.
    let mut round: Vec<Packet> = Vec::with_capacity(burst);
    let mut batch: Vec<Packet> = Vec::new();

    loop {
        if t >= horizon {
            break;
        }
        // Admission: everything arrived by `t` enters at its own arrival
        // instant, grouped per instant so the batched mode can hand the
        // tree whole same-time batches.
        while pending.peek().is_some_and(|p| p.arrival <= t) {
            let at = pending.peek().expect("peeked above").arrival;
            batch.clear();
            while pending.peek().is_some_and(|p| p.arrival == at) {
                batch.push(pending.next().expect("peeked"));
            }
            match mode {
                DrainMode::PerPacket => {
                    for p in batch.drain(..) {
                        if tree.enqueue(p, at).is_err() {
                            trace.drops += 1;
                        }
                    }
                }
                DrainMode::Batched => {
                    trace.drops += tree.enqueue_batch(batch.drain(..), at).len() as u64;
                }
            }
        }

        // One scheduling round, decided at `t`.
        round.clear();
        match mode {
            DrainMode::PerPacket => {
                for _ in 0..burst {
                    match tree.dequeue(t) {
                        Some(p) => round.push(p),
                        None => break,
                    }
                }
            }
            DrainMode::Batched => {
                tree.dequeue_upto(t, burst, &mut round);
            }
        }

        if round.is_empty() {
            // Idle: hop to the next arrival or shaping release. The
            // round already released everything due at `t`, so any
            // pending shaping event is strictly in the future.
            let next_arrival = pending.peek().map(|p| p.arrival);
            let next_ready = tree.next_shaping_event();
            let next = match (next_arrival, next_ready) {
                (Some(a), Some(r)) => a.min(r),
                (Some(a), None) => a,
                (None, Some(r)) => r,
                (None, None) => break, // drained for good
            };
            t = next.max(Nanos(t.as_nanos() + 1));
        } else {
            // Transmit the round back-to-back at line rate.
            for p in round.drain(..) {
                let finish = t + tx_time(p.length as u64, rate_bps);
                trace.departures.push(Departure {
                    wait: t.saturating_sub(p.arrival),
                    start: t,
                    finish,
                    packet: p,
                });
                t = finish;
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{merge, renumber, CbrSource, IncastSource, TrafficSource};
    use pifo_algos::{Stfq, TokenBucketFilter};
    use pifo_core::transaction::FnTransaction;

    fn fifo_tree(backend: PifoBackend, limit: Option<usize>) -> ScheduleTree {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        if let Some(l) = limit {
            b.buffer_limit(l);
        }
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        b.build(Box::new(move |_| root)).unwrap()
    }

    fn workload(flows: u32, end: Nanos) -> Vec<Packet> {
        let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
        for f in 0..flows {
            sources.push(Box::new(CbrSource::new(
                FlowId(f),
                1_000,
                2_000_000_000,
                Nanos(17 * f as u64),
                end,
            )));
        }
        sources.push(Box::new(IncastSource::new(
            FlowId(flows),
            32,
            1_000,
            4,
            8_000_000_000,
            Nanos::from_micros(50),
            end,
        )));
        let mut arr = merge(sources);
        renumber(&mut arr);
        arr
    }

    /// The acceptance-criterion cross-check: batched and per-packet
    /// drains produce byte-identical per-port departure traces, on every
    /// backend, under mixed CBR + incast load with drops in play.
    #[test]
    fn batched_and_per_packet_traces_identical() {
        let end = Nanos::from_micros(400);
        let arrivals = workload(12, end);
        assert!(arrivals.len() > 1_000, "workload must be non-trivial");

        for backend in PifoBackend::ALL {
            let build = || {
                let mut sb = SwitchBuilder::new(1_000_000_000);
                for _ in 0..4 {
                    // Tight buffers so admission rejects are on the
                    // compared path too.
                    sb.add_port(fifo_tree(backend, Some(64)));
                }
                sb.with_horizon(end).with_burst(8);
                sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 4))
            };
            let per_packet = build().run(&arrivals, DrainMode::PerPacket);
            let batched = build().run(&arrivals, DrainMode::Batched);

            assert_eq!(per_packet.misrouted, batched.misrouted);
            for (port, (a, b)) in per_packet.ports.iter().zip(&batched.ports).enumerate() {
                assert_eq!(a.drops, b.drops, "[{backend}] port {port} drops diverge");
                assert_eq!(
                    a.departures.len(),
                    b.departures.len(),
                    "[{backend}] port {port} departure count diverges"
                );
                for (x, y) in a.departures.iter().zip(&b.departures) {
                    assert_eq!(
                        (&x.packet, x.start, x.finish, x.wait),
                        (&y.packet, y.start, y.finish, y.wait),
                        "[{backend}] port {port} departure diverges"
                    );
                }
            }
            assert!(per_packet.total_departures() > 0);
        }
    }

    /// Ports are isolated: traffic for one port never shows up on, or
    /// delays, another.
    #[test]
    fn ports_are_isolated() {
        let mut sb = SwitchBuilder::new(8_000_000_000);
        for _ in 0..3 {
            sb.add_port(fifo_tree(PifoBackend::default(), None));
        }
        let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize));
        // Flood port 0; trickle port 2; nothing for port 1.
        let mut arrivals: Vec<Packet> = (0..100)
            .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(0)))
            .collect();
        arrivals.push(Packet::new(100, FlowId(2), 1_000, Nanos(5)));
        let run = sw.run(&arrivals, DrainMode::Batched);
        assert_eq!(run.ports[0].departures.len(), 100);
        assert_eq!(run.ports[1].departures.len(), 0);
        assert_eq!(run.ports[2].departures.len(), 1);
        // The port-2 packet is not queued behind port 0's flood.
        assert_eq!(run.ports[2].departures[0].start, Nanos(5));
        assert_eq!(run.last_finish(), run.ports[0].departures[99].finish);
    }

    /// Misroutes are counted, not transmitted.
    #[test]
    fn misroutes_are_counted() {
        let mut sb = SwitchBuilder::new(8_000_000_000);
        sb.add_port(fifo_tree(PifoBackend::default(), None));
        let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize));
        let arrivals = vec![
            Packet::new(0, FlowId(0), 100, Nanos(0)),
            Packet::new(1, FlowId(7), 100, Nanos(1)), // no port 7
        ];
        let run = sw.run(&arrivals, DrainMode::PerPacket);
        assert_eq!(run.misrouted, 1);
        assert_eq!(run.total_departures(), 1);
    }

    /// A shaped port sleeps across shaping gaps instead of spinning, and
    /// both drain modes agree through the gap.
    #[test]
    fn shaped_port_hops_to_release_times() {
        let build = || {
            let mut b = TreeBuilder::new();
            let root = b.add_root(
                "root",
                Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
                    Rank(ctx.now.as_nanos())
                })),
            );
            let leaf = b.add_child(
                root,
                "shaped",
                Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
                    Rank(ctx.now.as_nanos())
                })),
            );
            // 8 Gb/s = 1 B/ns, burst of one 1000 B packet.
            b.set_shaper(leaf, Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)));
            let mut sb = SwitchBuilder::new(80_000_000_000);
            sb.add_port(b.build(Box::new(move |_| leaf)).unwrap());
            sb.build(Box::new(|_: &Packet| 0))
        };
        let arrivals: Vec<Packet> = (0..3)
            .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(0)))
            .collect();
        let a = build().run(&arrivals, DrainMode::PerPacket);
        let b = build().run(&arrivals, DrainMode::Batched);
        for run in [&a, &b] {
            assert_eq!(run.ports[0].departures.len(), 3);
            // Token bucket meters one packet per microsecond after the
            // initial burst.
            assert_eq!(run.ports[0].departures[0].start, Nanos(0));
            assert_eq!(run.ports[0].departures[1].start, Nanos(1_000));
            assert_eq!(run.ports[0].departures[2].start, Nanos(2_000));
        }
    }
}
