//! A multi-port, shared-memory switch fabric: one classifier feeding N
//! egress ports, each owning a [`ScheduleTree`] drained at line rate.
//!
//! The paper's hardware serves many ports from one PIFO mesh at line
//! rate (§4–§5); single-queue microbenchmarks hide the behaviour that
//! emerges when a classifier sprays bursty, incast-prone traffic across
//! many queues. This module is the software analogue of that fabric:
//!
//! * a **shared classifier** ([`PortClassifier`]) maps every arriving
//!   packet to its egress port;
//! * each **port** owns one scheduling tree (any [`PifoBackend`], any
//!   transaction program — ports may differ);
//! * a **line-rate drain loop** transmits from every port at the
//!   configured link rate, in scheduling rounds of up to
//!   [`SwitchBuilder::with_burst`] packets.
//!
//! # Scheduling rounds and the batched hot path
//!
//! Ports make decisions at *round* granularity: at round time `t` the
//! port admits everything that has arrived by `t` and then commits up to
//! `burst` packets, all decided at `t`, transmitted back-to-back. The
//! [`DrainMode`] chooses how each round talks to the tree:
//!
//! * [`DrainMode::PerPacket`] — one [`ScheduleTree::enqueue`] /
//!   [`ScheduleTree::dequeue`] call per packet (the reference path);
//! * [`DrainMode::Batched`] — [`ScheduleTree::enqueue_batch`] per
//!   arrival instant and one [`ScheduleTree::dequeue_upto`] per round,
//!   which reaches the engines' amortized
//!   [`push_batch`](pifo_core::pifo::PifoQueue::push_batch)/
//!   [`pop_batch`](pifo_core::pifo::PifoQueue::pop_batch)
//!   implementations.
//!
//! Both modes make **exactly the same decisions**: the batched APIs are
//! byte-identical to their sequential expansion at a fixed decision
//! time, so per-port departure traces agree bit for bit — asserted for
//! every backend by `batched_and_per_packet_traces_identical` below and
//! by the `switch_fabric` bench's cross-check. The batch buys
//! throughput, never different behaviour.
//!
//! # One buffer for all ports
//!
//! The paper's switch serves every port from **one** shared packet
//! buffer (§5.1), with §6.1 threshold counters deciding drops before any
//! enqueue. [`SwitchBuilder::with_shared_pool`] builds the fabric that
//! way: each [`SwitchBuilder::add_shared_port`] tree holds a
//! [`PoolHandle`] into one [`SharedPacketPool`], so incast pressure on
//! one port genuinely consumes — and, under
//! [`AdmissionPolicy::DynamicThreshold`], is fenced away from — the
//! memory every other port draws on. Ports with private slabs
//! ([`SwitchBuilder::add_port`]) remain embarrassingly independent.
//!
//! Because ports contend for shared state, [`Switch::run`] executes
//! scheduling rounds in **global `(time, port)` order** — the earliest
//! pending round across the fabric runs first, ties broken by port
//! index — rather than simulating each port to completion in turn.
//! For private-slab fabrics the interleaving is unobservable (ports
//! share nothing), so traces are unchanged; for shared-pool fabrics it
//! is what makes cross-port admission coupling real and deterministic:
//! identical inputs give bit-identical traces, on every backend, in
//! every drain mode.
//!
//! # Threading model ([`DrainMode::Parallel`])
//!
//! `ScheduleTree` is `Send` and the pool's accounting is atomic (see
//! `pifo_core::pool`), so whole port state machines can migrate to
//! worker threads. [`DrainMode::Parallel`] drains **independent** ports
//! — private slabs, or a pool with exactly one registered port — on a
//! worker pool: ports are claimed off a shared atomic counter (one port
//! at a time up to 16 ports, chunks of 4 above that, so big fabrics
//! amortize the claim and small ones still balance), and each claimed
//! port runs its round loop to completion with the batched tree APIs.
//! Independent ports observe nothing of each other, so each per-port
//! trace — and therefore the merged `(time, port)`-ordered trace — is
//! **bit-identical** to the sequential modes, regardless of worker
//! count or claim interleaving.
//!
//! Ports that *share* a pool are a different machine: every admission
//! decision reads the global occupancy that every earlier-in-time
//! admission on any port wrote, so the decisions form one serial
//! dependency chain through the pool — running them concurrently and
//! committing in `(time, port)` order afterwards would require
//! speculating admissions and rolling back occupancy, which the paper's
//! hardware (one shared buffer, one clock domain, §5.1) never does.
//! `Parallel` therefore detects shared-pool fabrics and executes their
//! rounds on the caller's thread in the same global `(time, port)`
//! order as the sequential modes — trace-identical by construction; the
//! atomic pool still buys the lock-free packet reads on the tree hot
//! path, and multi-threaded pool *accounting* is exercised (and
//! sanitized) by the pool's own stress tests.

use crate::port::Departure;
use pifo_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps a packet to the egress port that must transmit it — the shared
/// classification step in front of the fabric. Out-of-range ports count
/// as misroutes (the packet is dropped and tallied in
/// [`SwitchRun::misrouted`]). `Send` so fabrics (which own their
/// classifier) can cross thread boundaries.
pub type PortClassifier = Box<dyn Fn(&Packet) -> usize + Send>;

/// How a port's scheduling rounds talk to its tree (see the module docs;
/// all modes produce byte-identical departure traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainMode {
    /// One `enqueue`/`dequeue` call per packet — the reference path.
    #[default]
    PerPacket,
    /// `enqueue_batch` per arrival instant, `dequeue_upto` per round —
    /// the amortized path.
    Batched,
    /// Drain independent ports concurrently on `workers` threads (the
    /// batched APIs inside each round); shared-pool fabrics fall back to
    /// the sequential global `(time, port)` round order on the calling
    /// thread (see the module docs' threading model). `workers: 0`
    /// means one worker per available CPU. Traces are bit-identical to
    /// the sequential modes in every case.
    Parallel {
        /// Worker threads to drain ports on (0 = available parallelism).
        workers: usize,
    },
}

impl DrainMode {
    /// Short stable label for reports (`per_packet` / `batched` /
    /// `parallel`).
    pub fn label(self) -> &'static str {
        match self {
            DrainMode::PerPacket => "per_packet",
            DrainMode::Batched => "batched",
            DrainMode::Parallel { .. } => "parallel",
        }
    }
}

/// Builder for [`Switch`]: add one scheduling tree per egress port, then
/// [`build`](Self::build) with the shared classifier.
///
/// ```
/// use pifo_core::prelude::*;
/// use pifo_sim::switch::{DrainMode, SwitchBuilder};
///
/// // Two FIFO ports behind a flow-hash classifier.
/// let mut sb = SwitchBuilder::new(8_000_000_000); // 8 Gb/s per port
/// for _ in 0..2 {
///     let mut b = TreeBuilder::new();
///     let root = b.add_root("fifo", Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
///         Rank(ctx.now.as_nanos())
///     })));
///     sb.add_port(b.build(Box::new(move |_| root)).unwrap());
/// }
/// let mut switch = sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 2));
///
/// let arrivals: Vec<Packet> = (0..4)
///     .map(|i| Packet::new(i, FlowId(i as u32), 1_000, Nanos(i)))
///     .collect();
/// let run = switch.run(&arrivals, DrainMode::Batched);
/// assert_eq!(run.total_departures(), 4);
/// assert_eq!(run.ports[0].departures.len(), 2); // flows 0, 2
/// assert_eq!(run.ports[1].departures.len(), 2); // flows 1, 3
/// ```
pub struct SwitchBuilder {
    trees: Vec<ScheduleTree>,
    rate_bps: u64,
    horizon: Nanos,
    burst: usize,
    pool: Option<SharedPool>,
    track_inversions: bool,
    telemetry: Option<TelemetryConfig>,
}

impl SwitchBuilder {
    /// A switch whose ports each transmit at `rate_bps`, with a long
    /// horizon and the default scheduling round of 32 packets.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        SwitchBuilder {
            trees: Vec::new(),
            rate_bps,
            horizon: Nanos::from_secs(3_600),
            burst: 32,
            pool: None,
            track_inversions: false,
            telemetry: None,
        }
    }

    /// Enable per-port rank-inversion tracking: every port tree scores
    /// its root-level dequeue ranks (inversions, unpifoness, max
    /// regression — see
    /// [`pifo_core::metrics::InversionStats`]). Read the
    /// counters after a run with [`Switch::inversion_stats`] /
    /// [`Switch::total_inversion_stats`]. Off by default — disabled
    /// tracking costs nothing on the drain path.
    pub fn track_inversions(&mut self) -> &mut Self {
        self.track_inversions = true;
        self
    }

    /// Collect telemetry during runs: every port tree gets a
    /// [`FlightRecorder`] ring of `cfg.ring_capacity` trace events (plus
    /// per-packet [`PathRecord`]s when `cfg.path_records` is set), and
    /// each port samples its gauge series — queue depth, pool occupancy,
    /// cumulative inversions when tracking — every `cfg.sample_every`
    /// scheduling rounds. Read the merged result after a run with
    /// [`Switch::telemetry_snapshot`]; per-port path records land on
    /// [`PortTrace::paths`]. Off by default — disabled telemetry costs
    /// one null check per tree operation. Telemetry observes only:
    /// departure traces are bit-identical with it on or off.
    pub fn with_telemetry(&mut self, cfg: TelemetryConfig) -> &mut Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Add an egress port owning `tree`; returns the port index the
    /// classifier must use for it (assigned densely from 0).
    ///
    /// A tree built with `TreeBuilder::build` keeps its **private** slab
    /// — this port shares memory with nobody. Use
    /// [`add_shared_port`](Self::add_shared_port) for ports drawing on
    /// the fabric-wide pool.
    pub fn add_port(&mut self, tree: ScheduleTree) -> usize {
        self.trees.push(tree);
        self.trees.len() - 1
    }

    /// Attach the fabric-wide shared packet pool (§5.1's one buffer for
    /// all ports): `capacity` packets, admission decided per port by
    /// `policy` (§6.1). Returns the [`SharedPool`] so the caller can
    /// read occupancies and per-port admitted/rejected counters after a
    /// run; the switch keeps its own reference (see
    /// [`Switch::shared_pool`]).
    ///
    /// Call before [`add_shared_port`](Self::add_shared_port).
    ///
    /// # Panics
    ///
    /// Panics if a shared pool was already attached — a second pool
    /// would silently split the fabric's "shared" memory in two.
    pub fn with_shared_pool(&mut self, capacity: usize, policy: AdmissionPolicy) -> SharedPool {
        assert!(
            self.pool.is_none(),
            "the fabric already has a shared pool; one switch shares one memory"
        );
        let pool = SharedPacketPool::new(capacity, policy).into_shared();
        self.pool = Some(pool.clone());
        pool
    }

    /// Add an egress port whose tree buffers in the fabric's shared
    /// pool: registers a pool port and hands its [`PoolHandle`] to
    /// `build` (which typically finishes with
    /// `TreeBuilder::build_in_pool`). Returns the port index.
    ///
    /// # Panics
    ///
    /// Panics if [`with_shared_pool`](Self::with_shared_pool) was not
    /// called first, or if the new pool port's index would not match
    /// the switch port's (mixing [`add_port`](Self::add_port) and
    /// `add_shared_port`, or registering extra pool ports by hand,
    /// would silently misalign the pool's per-port counters with the
    /// run's port traces — for a heterogeneous layout, register pool
    /// handles yourself and use `add_port`).
    pub fn add_shared_port(&mut self, build: impl FnOnce(PoolHandle) -> ScheduleTree) -> usize {
        let handle = self
            .pool
            .as_ref()
            .expect("call with_shared_pool before add_shared_port")
            .register_port();
        assert_eq!(
            handle.port(),
            self.trees.len(),
            "pool port index diverged from switch port index: keep add_shared_port \
             fabrics homogeneous (or wire PoolHandles to add_port manually)"
        );
        self.add_port(build(handle))
    }

    /// Set the simulation horizon: no scheduling round *starts* at or
    /// after it (a round in flight may finish past it).
    pub fn with_horizon(&mut self, horizon: Nanos) -> &mut Self {
        self.horizon = horizon;
        self
    }

    /// Packets committed per scheduling round (default 32). Both drain
    /// modes use the same round size — it defines the decision epochs,
    /// while [`DrainMode`] only chooses the API used inside a round.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn with_burst(&mut self, burst: usize) -> &mut Self {
        assert!(burst > 0, "a scheduling round must commit >= 1 packet");
        self.burst = burst;
        self
    }

    /// Finish construction with the shared classifier.
    ///
    /// # Panics
    ///
    /// Panics if no port was added.
    pub fn build(self, classifier: PortClassifier) -> Switch {
        assert!(!self.trees.is_empty(), "a switch needs at least one port");
        let mut ports = self.trees;
        if self.track_inversions {
            for tree in &mut ports {
                tree.enable_inversion_tracking();
            }
        }
        if let Some(cfg) = self.telemetry {
            for tree in &mut ports {
                tree.enable_flight_recorder(cfg.ring_capacity);
                if cfg.path_records {
                    tree.enable_path_records();
                }
            }
        }
        Switch {
            ports,
            classifier,
            rate_bps: self.rate_bps,
            horizon: self.horizon,
            burst: self.burst,
            pool: self.pool,
            telemetry: self.telemetry,
        }
    }
}

/// The multi-port fabric (see the module docs). Built by
/// [`SwitchBuilder`]; driven by [`run`](Self::run).
pub struct Switch {
    pub(crate) ports: Vec<ScheduleTree>,
    pub(crate) classifier: PortClassifier,
    pub(crate) rate_bps: u64,
    pub(crate) horizon: Nanos,
    pub(crate) burst: usize,
    pub(crate) pool: Option<SharedPool>,
    pub(crate) telemetry: Option<TelemetryConfig>,
}

/// What one egress port did during a [`Switch::run`].
#[derive(Debug, Clone, Default)]
pub struct PortTrace {
    /// Every transmitted packet with its timing, in transmission order.
    pub departures: Vec<Departure>,
    /// Packets this port's tree rejected (buffer full / unknown flow).
    pub drops: u64,
    /// Completed per-packet path records, index-aligned with
    /// [`departures`](Self::departures) (`paths[i]` digests
    /// `departures[i]`'s walk, with `departed` finalized to its transmit
    /// start so `PathRecord::wait` equals `Departure::wait` exactly).
    /// Empty unless the fabric enabled
    /// [`TelemetryConfig::path_records`].
    pub paths: Vec<PathRecord>,
    /// This port's sampled gauge series (queue depth, pool occupancy,
    /// cumulative inversions when tracking). Empty unless the fabric was
    /// built with [`SwitchBuilder::with_telemetry`].
    pub gauges: Vec<GaugeSeries>,
}

/// The result of one [`Switch::run`]: per-port traces plus fabric-level
/// counters.
#[derive(Debug, Clone, Default)]
pub struct SwitchRun {
    /// One trace per port, indexed like the builder's ports.
    pub ports: Vec<PortTrace>,
    /// Packets the classifier sent to a non-existent port.
    pub misrouted: u64,
}

impl SwitchRun {
    /// Total packets transmitted across every port.
    pub fn total_departures(&self) -> usize {
        self.ports.iter().map(|p| p.departures.len()).sum()
    }

    /// Total packets dropped by port trees (excluding misroutes).
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.drops).sum()
    }

    /// The instant the last bit left the fabric, across all ports.
    pub fn last_finish(&self) -> Nanos {
        self.ports
            .iter()
            .filter_map(|p| p.departures.last())
            .map(|d| d.finish)
            .max()
            .unwrap_or(Nanos::ZERO)
    }
}

impl Switch {
    /// Number of egress ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Read-only view of port `i`'s scheduling tree.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port(&self, i: usize) -> &ScheduleTree {
        &self.ports[i]
    }

    /// The fabric-wide shared packet pool, when one was attached with
    /// [`SwitchBuilder::with_shared_pool`].
    pub fn shared_pool(&self) -> Option<&SharedPool> {
        self.pool.as_ref()
    }

    /// Port `i`'s rank-inversion counters; `None` unless the fabric was
    /// built with [`SwitchBuilder::track_inversions`] (or the port tree
    /// enabled tracking itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn inversion_stats(&self, i: usize) -> Option<pifo_core::metrics::InversionStats> {
        self.ports[i].inversion_stats()
    }

    /// Fabric-level inversion counters: every tracking port merged
    /// (`max_regression` takes the fabric max). `None` when no port
    /// tracks.
    pub fn total_inversion_stats(&self) -> Option<pifo_core::metrics::InversionStats> {
        let mut total: Option<pifo_core::metrics::InversionStats> = None;
        for tree in &self.ports {
            if let Some(s) = tree.inversion_stats() {
                total.get_or_insert_with(Default::default).merge(&s);
            }
        }
        total
    }

    /// Run `arrivals` (time-sorted) through the fabric with the given
    /// drain mode, returning the per-port departure traces.
    ///
    /// Scheduling rounds execute in global `(time, port)` order — the
    /// earliest pending round anywhere in the fabric runs next, ties
    /// broken by port index — so ports sharing a packet pool observe
    /// each other's occupancy exactly as of their own decision instants.
    /// For private-slab ports the interleaving is unobservable, which is
    /// what lets [`DrainMode::Parallel`] drain them on worker threads
    /// (see the module docs' threading model). Determinism is total —
    /// identical inputs give bit-identical traces, in every mode.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted by arrival time.
    pub fn run(&mut self, arrivals: &[Packet], mode: DrainMode) -> SwitchRun {
        assert!(
            arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "arrivals must be time-sorted"
        );
        // Shared classification: split the arrival stream per port,
        // preserving arrival order (stable).
        let mut per_port: Vec<Vec<Packet>> = (0..self.ports.len()).map(|_| Vec::new()).collect();
        let mut misrouted = 0u64;
        for p in arrivals {
            let port = (self.classifier)(p);
            match per_port.get_mut(port) {
                Some(q) => q.push(p.clone()),
                None => misrouted += 1,
            }
        }

        let telemetry = self.telemetry;
        let mut sims: Vec<PortSim> = per_port
            .into_iter()
            .zip(&self.ports)
            .enumerate()
            .map(|(i, (arr, tree))| PortSim::new(arr, tree, self.burst, i, telemetry))
            .collect();

        match mode {
            DrainMode::Parallel { workers } if self.ports_are_independent() => {
                self.drain_parallel(&mut sims, workers);
            }
            DrainMode::Parallel { .. } => {
                // Shared-pool admission is a serial dependency chain
                // through the pool's occupancy: commit the rounds in the
                // sequential global order (batched tree APIs inside).
                self.drain_global_order(&mut sims, DrainMode::Batched);
            }
            _ => self.drain_global_order(&mut sims, mode),
        }

        SwitchRun {
            ports: sims
                .into_iter()
                .map(|mut s| {
                    s.flush_gauges();
                    s.trace
                })
                .collect(),
            misrouted,
        }
    }

    /// The telemetry configuration this fabric was built with, if any.
    pub fn telemetry_config(&self) -> Option<TelemetryConfig> {
        self.telemetry
    }

    /// Merge every port's flight recorder and the run's sampled gauge
    /// series into one [`TelemetrySnapshot`], events in canonical
    /// `(time, port)` order (stable, so each port's recording order is
    /// preserved within an instant) — byte-reproducible for a seeded
    /// run in every drain mode. `None` unless the fabric was built with
    /// [`SwitchBuilder::with_telemetry`].
    pub fn telemetry_snapshot(&self, run: &SwitchRun) -> Option<TelemetrySnapshot> {
        self.telemetry?;
        let mut snap = TelemetrySnapshot::default();
        for tree in &self.ports {
            if let Some(r) = tree.flight_recorder() {
                snap.absorb_recorder(r);
            }
        }
        snap.sort_events();
        for trace in &run.ports {
            snap.gauges.extend(trace.gauges.iter().cloned());
        }
        Some(snap)
    }

    /// True when no two ports can observe each other through a shared
    /// packet pool — every tree is the sole registered port of its pool.
    fn ports_are_independent(&self) -> bool {
        self.ports
            .iter()
            .all(|t| t.packet_buffer().num_ports() <= 1)
    }

    /// Global round interleaving: always advance the port whose next
    /// scheduling round is earliest (ties → lowest port index).
    fn drain_global_order(&mut self, sims: &mut [PortSim], mode: DrainMode) {
        loop {
            let mut best: Option<usize> = None;
            for (i, s) in sims.iter().enumerate() {
                if !s.done && best.map_or(true, |b| s.t < sims[b].t) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            sims[i].step_round(
                &mut self.ports[i],
                self.rate_bps,
                self.horizon,
                self.burst,
                mode,
            );
        }
    }

    /// Drain independent ports to completion on a worker pool. Workers
    /// claim ports off a shared counter — singly up to 16 ports, in
    /// chunks of 4 above that — and run each claimed port's round loop
    /// with the batched tree APIs. Only sound for independent ports
    /// (checked by the caller): nothing a port does is observable by
    /// another, so every per-port trace is the same as sequentially.
    fn drain_parallel(&mut self, sims: &mut [PortSim], workers: usize) {
        let (rate_bps, horizon, burst) = (self.rate_bps, self.horizon, self.burst);
        let n = sims.len();
        let workers = match workers {
            0 => std::thread::available_parallelism().map_or(1, |c| c.get()),
            w => w,
        }
        .min(n.max(1));
        let chunk = if n > 16 { 4 } else { 1 };
        let jobs: Vec<Mutex<(&mut PortSim, &mut ScheduleTree)>> = sims
            .iter_mut()
            .zip(self.ports.iter_mut())
            .map(Mutex::new)
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for job in &jobs[start..n.min(start + chunk)] {
                        // Uncontended by construction: each job index is
                        // claimed exactly once.
                        let mut guard = job.lock().expect("port job poisoned");
                        let (sim, tree) = &mut *guard;
                        while !sim.done {
                            sim.step_round(tree, rate_bps, horizon, burst, DrainMode::Batched);
                        }
                    }
                });
            }
        });
    }
}

/// One port's progress through [`Switch::run`]: its pending classified
/// arrivals, the time its next scheduling round is decided at, and the
/// trace accumulated so far. The tree itself stays in `Switch::ports`
/// (borrowed per round) so shared-pool borrows never overlap.
struct PortSim {
    /// The port owns its arrivals: packets move (never clone) from the
    /// classified stream into the tree.
    pending: std::iter::Peekable<std::vec::IntoIter<Packet>>,
    /// Decision time of the next scheduling round.
    t: Nanos,
    done: bool,
    trace: PortTrace,
    /// Reused across rounds so the steady state allocates nothing.
    round: Vec<Packet>,
    batch: Vec<Packet>,
    /// Scheduling rounds executed so far (drives gauge sampling; counts
    /// the same way in every drain mode, so sample instants agree).
    rounds: u64,
    /// `Some(every)` when telemetry gauges are being sampled.
    sample_every: Option<u64>,
    depth_gauge: GaugeSeries,
    occ_gauge: GaugeSeries,
    inv_gauge: GaugeSeries,
}

impl PortSim {
    fn new(
        arrivals: Vec<Packet>,
        tree: &ScheduleTree,
        burst: usize,
        port: usize,
        telemetry: Option<TelemetryConfig>,
    ) -> PortSim {
        let (t, done) = match arrivals.first() {
            Some(p) => (p.arrival, false),
            None if tree.is_empty() && tree.shaped_len() == 0 => (Nanos::ZERO, true),
            None => (Nanos::ZERO, false),
        };
        PortSim {
            pending: arrivals.into_iter().peekable(),
            t,
            done,
            trace: PortTrace::default(),
            round: Vec::with_capacity(burst),
            batch: Vec::new(),
            rounds: 0,
            sample_every: telemetry.map(|c| c.sample_every.max(1)),
            depth_gauge: GaugeSeries::new(format!("port{port}.depth")),
            occ_gauge: GaugeSeries::new(format!("port{port}.pool_occupancy")),
            inv_gauge: GaugeSeries::new(format!("port{port}.inversions")),
        }
    }

    /// Move the sampled gauge series into the trace (end of run).
    fn flush_gauges(&mut self) {
        if self.sample_every.is_some() {
            self.trace.gauges = vec![
                std::mem::take(&mut self.depth_gauge),
                std::mem::take(&mut self.occ_gauge),
            ];
            if !self.inv_gauge.points.is_empty() {
                self.trace.gauges.push(std::mem::take(&mut self.inv_gauge));
            }
        }
    }

    /// Execute one scheduling round at `self.t`: admit everything
    /// arrived by then (each packet at its own arrival instant, grouped
    /// per instant so the batched mode hands the tree whole same-time
    /// batches), commit up to `burst` packets decided at `t`, transmit
    /// back-to-back; when idle, hop to the next arrival or shaping
    /// release, or finish.
    fn step_round(
        &mut self,
        tree: &mut ScheduleTree,
        rate_bps: u64,
        horizon: Nanos,
        burst: usize,
        mode: DrainMode,
    ) {
        if self.t >= horizon {
            self.done = true;
            return;
        }
        while self.pending.peek().is_some_and(|p| p.arrival <= self.t) {
            let at = self.pending.peek().expect("peeked above").arrival;
            self.batch.clear();
            while self.pending.peek().is_some_and(|p| p.arrival == at) {
                self.batch.push(self.pending.next().expect("peeked"));
            }
            match mode {
                DrainMode::PerPacket => {
                    for p in self.batch.drain(..) {
                        if tree.enqueue(p, at).is_err() {
                            self.trace.drops += 1;
                        }
                    }
                }
                DrainMode::Batched | DrainMode::Parallel { .. } => {
                    self.trace.drops += tree.enqueue_batch(self.batch.drain(..), at).len() as u64;
                }
            }
        }

        // One scheduling round, decided at `t`.
        self.round.clear();
        match mode {
            DrainMode::PerPacket => {
                for _ in 0..burst {
                    match tree.dequeue(self.t) {
                        Some(p) => self.round.push(p),
                        None => break,
                    }
                }
            }
            DrainMode::Batched | DrainMode::Parallel { .. } => {
                tree.dequeue_upto(self.t, burst, &mut self.round);
            }
        }

        // Gauge sampling happens at a fixed point in the round — after
        // the dequeue decisions, before transmit — so the sampled values
        // and instants are identical in every drain mode.
        self.rounds += 1;
        if let Some(every) = self.sample_every {
            if self.rounds % every == 0 {
                self.depth_gauge.push(self.t, tree.len() as u64);
                self.occ_gauge
                    .push(self.t, tree.packet_buffer().live() as u64);
                if let Some(s) = tree.inversion_stats() {
                    self.inv_gauge.push(self.t, s.inversions);
                }
            }
        }

        if self.round.is_empty() {
            // Idle: hop to the next arrival or shaping release. The
            // round already released everything due at `t`, so any
            // pending shaping event is strictly in the future.
            let next_arrival = self.pending.peek().map(|p| p.arrival);
            let next_ready = tree.next_shaping_event();
            let next = match (next_arrival, next_ready) {
                (Some(a), Some(r)) => a.min(r),
                (Some(a), None) => a,
                (None, Some(r)) => r,
                (None, None) => {
                    self.done = true; // drained for good
                    return;
                }
            };
            self.t = next.max(Nanos(self.t.as_nanos() + 1));
        } else {
            // Transmit the round back-to-back at line rate.
            for p in self.round.drain(..) {
                let finish = self.t + tx_time(p.length as u64, rate_bps);
                self.trace.departures.push(Departure {
                    wait: self.t.saturating_sub(p.arrival),
                    start: self.t,
                    finish,
                    packet: p,
                });
                self.t = finish;
            }
            if tree.path_records_enabled() {
                // One record completed per packet dequeued this round,
                // in dequeue order — exactly the departures just pushed.
                // Finalize `departed` to each packet's transmit start so
                // telemetry waits reconcile with `Departure::wait`.
                let mut recs = tree.drain_path_records();
                let base = self.trace.departures.len() - recs.len();
                for (i, r) in recs.iter_mut().enumerate() {
                    r.departed = self.trace.departures[base + i].start;
                }
                self.trace.paths.append(&mut recs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{merge, renumber, CbrSource, IncastSource, TrafficSource};
    use pifo_algos::{Stfq, TokenBucketFilter};
    use pifo_core::transaction::FnTransaction;

    fn fifo_tree(backend: PifoBackend, limit: Option<usize>) -> ScheduleTree {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        if let Some(l) = limit {
            b.buffer_limit(l);
        }
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        b.build(Box::new(move |_| root)).unwrap()
    }

    fn workload(flows: u32, end: Nanos) -> Vec<Packet> {
        let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
        for f in 0..flows {
            sources.push(Box::new(CbrSource::new(
                FlowId(f),
                1_000,
                2_000_000_000,
                Nanos(17 * f as u64),
                end,
            )));
        }
        sources.push(Box::new(IncastSource::new(
            FlowId(flows),
            32,
            1_000,
            4,
            8_000_000_000,
            Nanos::from_micros(50),
            end,
        )));
        let mut arr = merge(sources);
        renumber(&mut arr);
        arr
    }

    /// The acceptance-criterion cross-check: batched and per-packet
    /// drains produce byte-identical per-port departure traces, on every
    /// backend, under mixed CBR + incast load with drops in play.
    #[test]
    fn batched_and_per_packet_traces_identical() {
        let end = Nanos::from_micros(400);
        let arrivals = workload(12, end);
        assert!(arrivals.len() > 1_000, "workload must be non-trivial");

        for backend in PifoBackend::ALL {
            let build = || {
                let mut sb = SwitchBuilder::new(1_000_000_000);
                for _ in 0..4 {
                    // Tight buffers so admission rejects are on the
                    // compared path too.
                    sb.add_port(fifo_tree(backend, Some(64)));
                }
                sb.with_horizon(end).with_burst(8);
                sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 4))
            };
            let per_packet = build().run(&arrivals, DrainMode::PerPacket);
            let batched = build().run(&arrivals, DrainMode::Batched);

            assert_eq!(per_packet.misrouted, batched.misrouted);
            for (port, (a, b)) in per_packet.ports.iter().zip(&batched.ports).enumerate() {
                assert_eq!(a.drops, b.drops, "[{backend}] port {port} drops diverge");
                assert_eq!(
                    a.departures.len(),
                    b.departures.len(),
                    "[{backend}] port {port} departure count diverges"
                );
                for (x, y) in a.departures.iter().zip(&b.departures) {
                    assert_eq!(x, y, "[{backend}] port {port} departure diverges");
                }
            }
            assert!(per_packet.total_departures() > 0);
        }
    }

    /// Fabric-level inversion tracking: exact backends score zero on
    /// every port; an approximate FIFO backend under priority-inverting
    /// arrivals scores the inversions it actually commits.
    #[test]
    fn inversion_tracking_scores_ports() {
        let build = |backend: PifoBackend, track: bool| {
            let mut sb = SwitchBuilder::new(8_000_000_000);
            if track {
                sb.track_inversions();
            }
            for _ in 0..2 {
                let mut b = TreeBuilder::new();
                b.with_backend(backend);
                let root = b.add_root(
                    "prio",
                    Box::new(FnTransaction::new("prio", |ctx: &EnqCtx| {
                        Rank(ctx.packet.class as u64)
                    })),
                );
                sb.add_port(b.build(Box::new(move |_| root)).unwrap());
            }
            sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 2))
        };
        // Descending classes arriving together: an exact PIFO reverses
        // them; a FIFO transmits them as-is, inverting every pair.
        let arrivals: Vec<Packet> = (0..64u64)
            .map(|i| {
                Packet::new(i, FlowId((i % 2) as u32), 1_000, Nanos(0)).with_class(63 - i as u8)
            })
            .collect();

        let mut untracked = build(PifoBackend::Rifo, false);
        untracked.run(&arrivals, DrainMode::Batched);
        assert_eq!(
            untracked.total_inversion_stats(),
            None,
            "tracking is opt-in"
        );

        for backend in PifoBackend::EXACT {
            let mut sw = build(backend, true);
            sw.run(&arrivals, DrainMode::Batched);
            let total = sw.total_inversion_stats().expect("tracking enabled");
            assert_eq!(total.dequeues, 64, "{backend}");
            assert_eq!(total.inversions, 0, "{backend} is exact");
            assert_eq!(total.unpifoness, 0, "{backend} is exact");
        }

        let mut sw = build(PifoBackend::Rifo, true);
        sw.run(&arrivals, DrainMode::Batched);
        let total = sw.total_inversion_stats().expect("tracking enabled");
        assert_eq!(total.dequeues, 64);
        assert!(total.inversions > 0, "FIFO under inverted load");
        assert!(total.unpifoness > 0);
        for port in 0..sw.num_ports() {
            let s = sw.inversion_stats(port).expect("per-port counters");
            assert!(s.inversions > 0, "port {port} saw inverted arrivals");
        }
    }

    /// Ports are isolated: traffic for one port never shows up on, or
    /// delays, another.
    #[test]
    fn ports_are_isolated() {
        let mut sb = SwitchBuilder::new(8_000_000_000);
        for _ in 0..3 {
            sb.add_port(fifo_tree(PifoBackend::default(), None));
        }
        let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize));
        // Flood port 0; trickle port 2; nothing for port 1.
        let mut arrivals: Vec<Packet> = (0..100)
            .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(0)))
            .collect();
        arrivals.push(Packet::new(100, FlowId(2), 1_000, Nanos(5)));
        let run = sw.run(&arrivals, DrainMode::Batched);
        assert_eq!(run.ports[0].departures.len(), 100);
        assert_eq!(run.ports[1].departures.len(), 0);
        assert_eq!(run.ports[2].departures.len(), 1);
        // The port-2 packet is not queued behind port 0's flood.
        assert_eq!(run.ports[2].departures[0].start, Nanos(5));
        assert_eq!(run.last_finish(), run.ports[0].departures[99].finish);
    }

    /// Misroutes are counted, not transmitted.
    #[test]
    fn misroutes_are_counted() {
        let mut sb = SwitchBuilder::new(8_000_000_000);
        sb.add_port(fifo_tree(PifoBackend::default(), None));
        let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize));
        let arrivals = vec![
            Packet::new(0, FlowId(0), 100, Nanos(0)),
            Packet::new(1, FlowId(7), 100, Nanos(1)), // no port 7
        ];
        let run = sw.run(&arrivals, DrainMode::PerPacket);
        assert_eq!(run.misrouted, 1);
        assert_eq!(run.total_departures(), 1);
    }

    /// Build a flat STFQ port tree inside a shared pool.
    fn pooled_fifo_tree(backend: PifoBackend, pool: PoolHandle) -> ScheduleTree {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        b.build_in_pool(Box::new(move |_| root), pool).unwrap()
    }

    /// One hog port floods a tight shared pool while a victim port
    /// trickles: under the naive shared cap the victim is locked out;
    /// under Choudhury–Hahne dynamic thresholds the hog is fenced and
    /// the victim transmits everything.
    #[test]
    fn shared_pool_dynamic_thresholds_prevent_lockout() {
        let run = |policy: AdmissionPolicy| -> SwitchRun {
            let mut sb = SwitchBuilder::new(1_000_000_000);
            sb.with_shared_pool(64, policy);
            sb.with_burst(4);
            for _ in 0..2 {
                sb.add_shared_port(|pool| pooled_fifo_tree(PifoBackend::default(), pool));
            }
            let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 2));
            // The hog (flow 0 → port 0): 8x oversubscribed CBR — one
            // 1000 B packet per 500 ns against an 8000 ns service time —
            // pins the shared pool at capacity for the whole storm. The
            // victim (flow 1 → port 1) sends a 12-packet burst mid-storm.
            let mut arrivals: Vec<Packet> = (0..400)
                .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(i * 500)))
                .collect();
            for i in 0..12u64 {
                arrivals.push(Packet::new(400 + i, FlowId(1), 1_000, Nanos(100_000)));
            }
            arrivals.sort_by_key(|p| p.arrival);
            sw.run(&arrivals, DrainMode::Batched)
        };

        let naive = run(AdmissionPolicy::Unlimited);
        assert!(
            naive.ports[1].drops > 0,
            "naive shared cap must lock the victim out (got {} drops)",
            naive.ports[1].drops
        );

        let fenced = run(AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
        assert_eq!(
            fenced.ports[1].drops, 0,
            "dynamic thresholds admit the victim"
        );
        assert_eq!(fenced.ports[1].departures.len(), 12);
        assert!(
            fenced.ports[0].drops > 0,
            "the hog still pays for its oversubscription"
        );
        // Every offered packet is accounted: transmitted or dropped.
        assert_eq!(fenced.total_departures() as u64 + fenced.total_drops(), 412);
        assert_eq!(naive.total_departures() as u64 + naive.total_drops(), 412);
    }

    /// Shared-pool fabrics keep the bit-identity guarantee: per-port
    /// traces agree across drain modes and across backends.
    #[test]
    fn shared_pool_traces_identical_across_modes_and_backends() {
        let end = Nanos::from_micros(200);
        let arrivals = workload(12, end);
        let build = |backend: PifoBackend| {
            let mut sb = SwitchBuilder::new(1_000_000_000);
            sb.with_shared_pool(256, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
            for _ in 0..4 {
                sb.add_shared_port(|pool| pooled_fifo_tree(backend, pool));
            }
            sb.with_horizon(end).with_burst(8);
            sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 4))
        };
        let reference = build(PifoBackend::SortedArray).run(&arrivals, DrainMode::PerPacket);
        assert!(reference.total_drops() > 0, "pool pressure must be real");
        // Cross-backend trace identity is an exact-trio property: the
        // approximate backends legally reorder departures.
        for backend in PifoBackend::EXACT {
            for mode in [DrainMode::PerPacket, DrainMode::Batched] {
                let run = build(backend).run(&arrivals, mode);
                for (port, (a, b)) in reference.ports.iter().zip(&run.ports).enumerate() {
                    assert_eq!(
                        a.drops,
                        b.drops,
                        "[{backend}/{}] port {port} drops diverge",
                        mode.label()
                    );
                    assert_eq!(
                        a.departures.len(),
                        b.departures.len(),
                        "[{backend}/{}] port {port} departure count diverges",
                        mode.label()
                    );
                    for (x, y) in a.departures.iter().zip(&b.departures) {
                        assert_eq!(
                            x,
                            y,
                            "[{backend}/{}] port {port} trace diverges",
                            mode.label()
                        );
                    }
                }
            }
        }
    }

    /// The pool's per-port counters agree with the port traces after a
    /// run, and the pool drains clean.
    #[test]
    fn shared_pool_counters_reconcile_with_traces() {
        let mut sb = SwitchBuilder::new(8_000_000_000);
        let pool = sb.with_shared_pool(32, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
        for _ in 0..3 {
            sb.add_shared_port(|h| pooled_fifo_tree(PifoBackend::Bucket, h));
        }
        let mut sw = sb.build(Box::new(|p: &Packet| p.flow.0 as usize % 3));
        let arrivals: Vec<Packet> = (0..300)
            .map(|i| Packet::new(i, FlowId((i % 5) as u32), 1_000, Nanos(i / 5)))
            .collect();
        let run = sw.run(&arrivals, DrainMode::Batched);

        let stats = pool.stats();
        assert_eq!(stats.live, 0, "fabric drained: pool must be empty");
        for (port, trace) in run.ports.iter().enumerate() {
            assert_eq!(
                stats.ports[port].rejected, trace.drops,
                "port {port}: pool reject counter vs trace drops"
            );
            assert_eq!(
                stats.ports[port].admitted,
                trace.departures.len() as u64,
                "port {port}: everything admitted eventually departed"
            );
        }
        pool.borrow().assert_coherent();
    }

    /// A shaped port sleeps across shaping gaps instead of spinning, and
    /// both drain modes agree through the gap.
    #[test]
    fn shaped_port_hops_to_release_times() {
        let build = || {
            let mut b = TreeBuilder::new();
            let root = b.add_root(
                "root",
                Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
                    Rank(ctx.now.as_nanos())
                })),
            );
            let leaf = b.add_child(
                root,
                "shaped",
                Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
                    Rank(ctx.now.as_nanos())
                })),
            );
            // 8 Gb/s = 1 B/ns, burst of one 1000 B packet.
            b.set_shaper(leaf, Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)));
            let mut sb = SwitchBuilder::new(80_000_000_000);
            sb.add_port(b.build(Box::new(move |_| leaf)).unwrap());
            sb.build(Box::new(|_: &Packet| 0))
        };
        let arrivals: Vec<Packet> = (0..3)
            .map(|i| Packet::new(i, FlowId(0), 1_000, Nanos(0)))
            .collect();
        let a = build().run(&arrivals, DrainMode::PerPacket);
        let b = build().run(&arrivals, DrainMode::Batched);
        for run in [&a, &b] {
            assert_eq!(run.ports[0].departures.len(), 3);
            // Token bucket meters one packet per microsecond after the
            // initial burst.
            assert_eq!(run.ports[0].departures[0].start, Nanos(0));
            assert_eq!(run.ports[0].departures[1].start, Nanos(1_000));
            assert_eq!(run.ports[0].departures[2].start, Nanos(2_000));
        }
    }
}
