//! Differential pin: [`DrainMode::Parallel`] produces a **bit-identical
//! merged departure trace** to the sequential drain modes — across every
//! PIFO backend and three traffic shapes (synchronized incast, seeded
//! Markov on/off bursts, heavy-tailed bounded-Pareto flows), for both
//! private-slab fabrics (genuinely concurrent workers) and shared-pool
//! fabrics (the serial commit-order fallback), at several worker counts.
//!
//! "Merged trace" is the fabric-level departure sequence committed in
//! global `(start time, port, per-port order)` order — the order the
//! sequential `Switch::run` produces rounds in. Comparing it (and not
//! just per-port traces) pins the cross-port interleaving, which is
//! exactly what a buggy parallel drain would scramble.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::switch::{DrainMode, SwitchBuilder, SwitchRun};
use pifo_sim::traffic::{
    flow_workload, merge, renumber, IncastSource, MarkovOnOffSource, SizeDistribution,
    TrafficSource,
};
use pifo_sim::Departure;

const PORTS: usize = 4;

/// Flatten a run into the global `(start, port, per-port index)`-ordered
/// departure sequence, tagged with the transmitting port.
fn merged_departures(run: &SwitchRun) -> Vec<(usize, Departure)> {
    let mut all: Vec<(usize, usize, Departure)> = Vec::with_capacity(run.total_departures());
    for (port, trace) in run.ports.iter().enumerate() {
        for (i, d) in trace.departures.iter().enumerate() {
            all.push((port, i, d.clone()));
        }
    }
    all.sort_by_key(|(port, i, d)| (d.start, *port, *i));
    all.into_iter().map(|(port, _, d)| (port, d)).collect()
}

fn assert_identical(label: &str, reference: &SwitchRun, candidate: &SwitchRun) {
    assert_eq!(
        reference.misrouted, candidate.misrouted,
        "[{label}] misroutes diverge"
    );
    for (port, (a, b)) in reference.ports.iter().zip(&candidate.ports).enumerate() {
        assert_eq!(a.drops, b.drops, "[{label}] port {port} drops diverge");
        assert_eq!(
            a.departures, b.departures,
            "[{label}] port {port} trace diverges"
        );
    }
    assert_eq!(
        merged_departures(reference),
        merged_departures(candidate),
        "[{label}] merged (time, port)-ordered trace diverges"
    );
}

/// Synchronized incast: 16 senders bursting at one epoch cadence.
fn incast_arrivals() -> Vec<Packet> {
    let mut arr: Vec<Packet> = Vec::new();
    let mut src = IncastSource::new(
        FlowId(0),
        16,
        1_000,
        6,
        8_000_000_000,
        Nanos::from_micros(20),
        Nanos::from_micros(300),
    );
    while let Some(p) = src.next_packet() {
        arr.push(p);
    }
    renumber(&mut arr);
    arr
}

/// Seeded Markov on/off bursts, one source per flow.
fn markov_arrivals() -> Vec<Packet> {
    let sources: Vec<Box<dyn TrafficSource>> = (0..8u32)
        .map(|f| {
            Box::new(MarkovOnOffSource::new(
                FlowId(f),
                1_000,
                12.0,
                8_000_000_000,
                Nanos::from_micros(3),
                Nanos::from_micros(300),
                0xC0FFEE ^ f as u64,
            )) as Box<dyn TrafficSource>
        })
        .collect();
    let mut arr = merge(sources);
    renumber(&mut arr);
    arr
}

/// Heavy-tailed bounded-Pareto flow workload (pFabric-style).
fn pareto_arrivals() -> Vec<Packet> {
    let dist = SizeDistribution::bounded_pareto(1.2, 1_000, 200_000);
    let (mut arr, _) = flow_workload(60, 400_000.0, &dist, 8_000_000_000, 1_000, 0xBEEF);
    renumber(&mut arr);
    arr
}

fn patterns() -> Vec<(&'static str, Vec<Packet>)> {
    vec![
        ("incast", incast_arrivals()),
        ("markov", markov_arrivals()),
        ("pareto", pareto_arrivals()),
    ]
}

fn private_switch(backend: PifoBackend) -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(1_000_000_000);
    for _ in 0..PORTS {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        // Tight private slabs keep admission rejects on the compared path.
        b.buffer_limit(48);
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        sb.add_port(b.build(Box::new(move |_| root)).unwrap());
    }
    // No horizon: fabrics drain to empty, so conservation and
    // pool-coherence assertions hold exactly.
    sb.with_burst(8);
    sb.build(Box::new(|p: &Packet| p.flow.0 as usize % PORTS))
}

fn shared_switch(backend: PifoBackend) -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(1_000_000_000);
    sb.with_shared_pool(128, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool).unwrap()
        });
    }
    sb.with_burst(8);
    sb.build(Box::new(|p: &Packet| p.flow.0 as usize % PORTS))
}

/// The acceptance criterion: for all 3 backends × 3 traffic patterns,
/// the parallel drain's merged trace is bit-identical to the sequential
/// one, on private-slab fabrics (real worker concurrency) at workers ∈
/// {1, 2, 4} and with the auto worker count.
#[test]
fn parallel_drain_matches_sequential_private_slabs() {
    for (pattern, arrivals) in patterns() {
        assert!(
            arrivals.len() > 200,
            "{pattern} workload must be non-trivial"
        );
        for backend in PifoBackend::ALL {
            let reference = private_switch(backend).run(&arrivals, DrainMode::PerPacket);
            assert!(reference.total_departures() > 0);
            let batched = private_switch(backend).run(&arrivals, DrainMode::Batched);
            assert_identical(
                &format!("{backend}/{pattern}/batched"),
                &reference,
                &batched,
            );
            for workers in [1usize, 2, 4, 0] {
                let parallel =
                    private_switch(backend).run(&arrivals, DrainMode::Parallel { workers });
                assert_identical(
                    &format!("{backend}/{pattern}/parallel-w{workers}"),
                    &reference,
                    &parallel,
                );
            }
        }
    }
}

/// Shared-pool fabrics keep the guarantee through the serial
/// commit-order fallback: admission coupling across ports is preserved
/// exactly, so traces (and pool counters) match the sequential run.
#[test]
fn parallel_drain_matches_sequential_shared_pool() {
    for (pattern, arrivals) in patterns() {
        for backend in PifoBackend::ALL {
            let reference = shared_switch(backend).run(&arrivals, DrainMode::PerPacket);
            for workers in [1usize, 4] {
                let mut sw = shared_switch(backend);
                let parallel = sw.run(&arrivals, DrainMode::Parallel { workers });
                assert_identical(
                    &format!("{backend}/{pattern}/shared/parallel-w{workers}"),
                    &reference,
                    &parallel,
                );
                let pool = sw.shared_pool().expect("built with a shared pool");
                assert_eq!(pool.stats().live, 0, "fabric drained clean");
                pool.borrow().assert_coherent();
            }
        }
    }
}

/// The drop accounting stays exact under parallel drain: every offered
/// packet is either transmitted, dropped by admission, or misrouted.
#[test]
fn parallel_drain_conserves_packets() {
    let arrivals = incast_arrivals();
    let run =
        private_switch(PifoBackend::Bucket).run(&arrivals, DrainMode::Parallel { workers: 4 });
    assert_eq!(
        run.total_departures() as u64 + run.total_drops() + run.misrouted,
        arrivals.len() as u64,
        "offered = transmitted + dropped + misrouted"
    );
}
