//! Property tests for the algorithm catalogue, centred on the invariant
//! the hardware design stands on (§5.2): **ranks within a flow must be
//! monotonically non-decreasing** for the flow-scheduler + rank-store
//! decomposition to behave as a PIFO.
//!
//! STFQ, FIFO and the token-bucket/priority transactions satisfy it by
//! construction; the fine-grained priority schemes (SRPT, LAS) do *not*
//! when several packets of one flow are in flight — that caveat is
//! pinned here and cross-referenced from the hw crate.

use pifo_algos::{
    Fifo, Lstf, MinRateGuarantee, Srpt, Stfq, StopAndGo, TokenBucketFilter, WeightTable,
};
use pifo_core::prelude::*;
use proptest::prelude::*;

fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
    EnqCtx {
        packet: p,
        now: Nanos(now),
        flow: p.flow,
    }
}

proptest! {
    /// STFQ: per-flow ranks are strictly increasing no matter how flows
    /// interleave or how virtual time advances — the §5.2 precondition.
    #[test]
    fn stfq_ranks_monotone_per_flow(
        steps in proptest::collection::vec((0u32..4, 1u32..1500, 0u64..100_000), 1..300)
    ) {
        let mut tx = Stfq::new(WeightTable::from_pairs([
            (FlowId(0), 1),
            (FlowId(1), 3),
            (FlowId(2), 7),
            (FlowId(3), 11),
        ]));
        let mut last: [Option<u64>; 4] = [None; 4];
        let mut now = 0u64;
        for (f, len, vt_jump) in steps {
            now += 5;
            let p = Packet::new(0, FlowId(f), len, Nanos(now));
            let r = tx.rank(&ctx(&p, now)).value();
            if let Some(prev) = last[f as usize] {
                prop_assert!(r >= prev, "flow {f}: rank {r} < previous {prev}");
            }
            last[f as usize] = Some(r);
            // Virtual time may advance arbitrarily between arrivals.
            tx.on_dequeue(Rank(vt_jump), &DeqCtx { now: Nanos(now), flow: FlowId(f) });
        }
    }

    /// FIFO ranks are monotone per flow trivially (time moves forward) —
    /// but assert it anyway, since the hw equivalence rests on it.
    #[test]
    fn fifo_ranks_monotone(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut tx = Fifo;
        let mut now = 0u64;
        let mut prev = 0u64;
        for dt in times {
            now += dt;
            let p = Packet::new(0, FlowId(0), 100, Nanos(now));
            let r = tx.rank(&ctx(&p, now)).value();
            prop_assert!(r >= prev);
            prev = r;
        }
    }

    /// SRPT does NOT satisfy the per-flow monotonicity precondition: a
    /// flow's remaining size shrinks with every packet, so ranks
    /// *decrease*. Fine-grained priorities need per-packet flows (or
    /// end-host pacing) on the §5.2 hardware.
    #[test]
    fn srpt_ranks_decrease_within_flow(sizes in 2u64..1_000_000) {
        let mut tx = Srpt;
        let p1 = Packet::new(0, FlowId(1), 100, Nanos(0)).with_remaining(sizes);
        let p2 = Packet::new(1, FlowId(1), 100, Nanos(1)).with_remaining(sizes / 2);
        let r1 = tx.rank(&ctx(&p1, 0));
        let r2 = tx.rank(&ctx(&p2, 1));
        prop_assert!(r2 < r1, "SRPT ranks shrink as the flow progresses");
    }

    /// Token bucket long-run rate bound: for any arrival pattern, the
    /// bytes whose send_time falls in `[0, T)` never exceed
    /// `burst + rate·T` — the defining property of a (r, B) regulator.
    #[test]
    fn tbf_never_exceeds_rate_envelope(
        arrivals in proptest::collection::vec((0u64..200_000, 64u32..1500), 1..200)
    ) {
        let rate_bps = 50_000_000u64; // 50 Mb/s
        let burst = 10_000u64;
        let mut tx = TokenBucketFilter::new(rate_bps, burst);
        let mut now = 0u64;
        let mut sends: Vec<(u64, u32)> = Vec::new();
        for (gap, len) in arrivals {
            now += gap;
            let p = Packet::new(0, FlowId(0), len, Nanos(now));
            let t = tx.send_time(&ctx(&p, now)).as_nanos();
            prop_assert!(t >= now, "cannot release into the past");
            sends.push((t, len));
        }
        // Envelope check at every send instant.
        sends.sort_unstable();
        for &(t, _) in &sends {
            let released: u64 = sends
                .iter()
                .filter(|&&(u, _)| u <= t)
                .map(|&(_, l)| l as u64)
                .sum();
            let allowance = burst + (t as u128 * rate_bps as u128 / 8 / 1_000_000_000) as u64
                + 1_500; // one packet of slop for the in-flight boundary
            prop_assert!(
                released <= allowance,
                "released {released}B by t={t}, allowance {allowance}B"
            );
        }
    }

    /// Stop-and-Go: release time is always the end of the *current or a
    /// later* frame, within one frame of arrival when arrivals are dense.
    #[test]
    fn stop_and_go_releases_at_frame_ends(
        gaps in proptest::collection::vec(0u64..999, 1..200)
    ) {
        let frame = 1_000u64;
        let mut tx = StopAndGo::new(Nanos(frame));
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            let p = Packet::new(0, FlowId(0), 100, Nanos(now));
            let t = tx.send_time(&ctx(&p, now)).as_nanos();
            prop_assert_eq!(t % frame, 0, "releases only at frame boundaries");
            prop_assert!(t > now, "strictly after arrival");
            prop_assert!(t - now <= frame, "within one frame for dense arrivals");
        }
    }

    /// Min-rate: a flow that never exceeds its guaranteed rate is never
    /// marked over-minimum (given its burst tolerance).
    #[test]
    fn conforming_flow_never_over_min(gap_ms in 1u64..20) {
        // 1500 B per gap_ms at guarantee covering it comfortably.
        let gap_ns = gap_ms * 1_000_000;
        let needed_bps = 1_500 * 8 * 1_000 / gap_ms * 1_000; // bytes/gap in bits/s
        let mut tx = MinRateGuarantee::new(needed_bps * 2, 3_000);
        let mut now = 0u64;
        for i in 0..50u64 {
            now += gap_ns;
            let p = Packet::new(i, FlowId(1), 1_500, Nanos(now));
            let r = tx.rank(&ctx(&p, now));
            prop_assert_eq!(r, Rank(0), "conforming flow stays priority 0");
        }
    }

    /// LSTF ranks never go negative (clamped), whatever the slack.
    #[test]
    fn lstf_rank_clamped(slack in i64::MIN / 2..i64::MAX / 2) {
        let mut tx = Lstf;
        let p = Packet::new(0, FlowId(0), 100, Nanos(0)).with_slack(slack);
        let r = tx.rank(&ctx(&p, 0));
        prop_assert_eq!(r.value(), slack.max(0) as u64);
    }
}

/// The SRPT/hardware interaction spelled out: on the §5.2 block, SRPT's
/// decreasing per-flow ranks make the flow FIFO (head holds the stale,
/// *largest* remaining) — so SRPT must be deployed with per-packet flow
/// ids on that hardware. The software PIFO handles it natively.
#[test]
fn srpt_on_hw_block_needs_per_packet_flows() {
    use pifo_core::pifo::PifoQueue;

    // Reference PIFO: true SRPT order.
    let mut reference: SortedArrayPifo<u64> = SortedArrayPifo::new();
    let mut tx = Srpt;
    for (id, rem) in [(0u64, 9_000u64), (1, 6_000), (2, 3_000)] {
        let p = Packet::new(id, FlowId(1), 100, Nanos(id)).with_remaining(rem);
        let r = tx.rank(&ctx(&p, id));
        reference.push(r, id);
    }
    let order: Vec<u64> = std::iter::from_fn(|| reference.pop().map(|(_, v)| v)).collect();
    assert_eq!(order, vec![2, 1, 0], "true PIFO: most-progressed first");
    // (The hw block with flow-grouped SRPT would emit 0,1,2 — FIFO —
    // because ranks decrease within the flow; see
    // pifo-hw block::tests::non_strict_mode_missorts_on_violation.)
}
