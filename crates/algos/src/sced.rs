//! Service-Curve Earliest Deadline First (§3.4, item 2).
//!
//! SC-EDF \[32\] schedules packets in increasing order of a deadline derived
//! from each flow's *service curve* — a specification of the cumulative
//! service the flow must receive over any interval. For the standard
//! piecewise-linear concave curves (minimum of `burst_i + rate_i·Δt`
//! segments), the deadline of a packet is the earliest time the curve,
//! started at the flow's busy-period begin, reaches the flow's cumulative
//! backlog including this packet.
//!
//! The scheduling transaction sets `p.rank = deadline`.

use pifo_core::prelude::*;
use std::collections::HashMap;

/// One segment of a piecewise-linear service curve: the flow is promised
/// at least `burst_bytes + rate_bps·Δt/8e9` bytes by offset `Δt` into its
/// busy period (the effective curve is the *minimum* over segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveSegment {
    /// Instantaneous allowance in bytes.
    pub burst_bytes: u64,
    /// Long-term slope in bits/second.
    pub rate_bps: u64,
}

/// A concave piecewise-linear service curve.
#[derive(Debug, Clone)]
pub struct ServiceCurve {
    segments: Vec<CurveSegment>,
}

impl ServiceCurve {
    /// Build from segments; the effective guarantee at offset Δ is
    /// `min_i(burst_i + rate_i·Δ)`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or any segment's rate is zero.
    pub fn new(segments: Vec<CurveSegment>) -> Self {
        assert!(!segments.is_empty(), "service curve needs >= 1 segment");
        assert!(
            segments.iter().all(|s| s.rate_bps > 0),
            "segment rates must be positive"
        );
        ServiceCurve { segments }
    }

    /// The simplest curve: a pure rate guarantee.
    pub fn rate(rate_bps: u64) -> Self {
        ServiceCurve::new(vec![CurveSegment {
            burst_bytes: 0,
            rate_bps,
        }])
    }

    /// Earliest offset Δ (ns) at which the curve reaches `bytes`:
    /// `max_i((bytes - burst_i) * 8e9 / rate_i)` — the max because the
    /// curve is the min of the segments.
    pub fn deadline_offset(&self, bytes: u64) -> u64 {
        self.segments
            .iter()
            .map(|s| {
                let deficit = bytes.saturating_sub(s.burst_bytes) as u128;
                let num = deficit * 8 * 1_000_000_000;
                let r = s.rate_bps as u128;
                num.div_ceil(r) as u64
            })
            .max()
            .expect("non-empty")
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    busy_start: Nanos,
    cum_bytes: u64,
    backlog: u64,
}

/// The SC-EDF scheduling transaction.
///
/// Tracks each flow's busy period: when a packet arrives to an idle flow,
/// the busy period (and cumulative byte count) restarts at `now`. The
/// caller must report departures via [`ScEdf::on_depart`] so backlog
/// tracking stays accurate (the simulator adapter does this).
#[derive(Debug, Clone)]
pub struct ScEdf {
    curves: HashMap<FlowId, ServiceCurve>,
    default_curve: ServiceCurve,
    flows: HashMap<FlowId, FlowState>,
}

impl ScEdf {
    /// SC-EDF where unspecified flows get `default_curve`.
    pub fn new(default_curve: ServiceCurve) -> Self {
        ScEdf {
            curves: HashMap::new(),
            default_curve,
            flows: HashMap::new(),
        }
    }

    /// Assign a service curve to one flow.
    pub fn set_curve(&mut self, flow: FlowId, curve: ServiceCurve) {
        self.curves.insert(flow, curve);
    }

    /// Report that one packet of `flow` with `length` bytes departed.
    pub fn on_depart(&mut self, flow: FlowId, length: u32) {
        if let Some(st) = self.flows.get_mut(&flow) {
            st.backlog = st.backlog.saturating_sub(length as u64);
        }
    }

    fn curve_of(&self, flow: FlowId) -> &ServiceCurve {
        self.curves.get(&flow).unwrap_or(&self.default_curve)
    }
}

impl SchedulingTransaction for ScEdf {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        let flow = ctx.flow;
        let len = ctx.packet.length as u64;
        let (busy_start, cum) = {
            let st = self.flows.entry(flow).or_insert(FlowState {
                busy_start: ctx.now,
                cum_bytes: 0,
                backlog: 0,
            });
            if st.backlog == 0 {
                // Idle flow: restart the busy period.
                st.busy_start = ctx.now;
                st.cum_bytes = 0;
            }
            st.cum_bytes += len;
            st.backlog += len;
            (st.busy_start, st.cum_bytes)
        };
        let offset = self.curve_of(flow).deadline_offset(cum);
        Rank(busy_start.as_nanos().saturating_add(offset))
    }

    fn on_dequeue(&mut self, _rank: Rank, _ctx: &DeqCtx) {}

    fn name(&self) -> &str {
        "SC-EDF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64, flow: u32) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: FlowId(flow),
        }
    }

    #[test]
    fn pure_rate_curve_deadlines_are_cumulative() {
        // 8 Mb/s = 1 byte/us: k-th 1000B packet's deadline = k ms.
        let mut s = ScEdf::new(ServiceCurve::rate(8_000_000));
        let p = Packet::new(0, FlowId(1), 1_000, Nanos(0));
        assert_eq!(s.rank(&ctx(&p, 0, 1)), Rank(1_000_000));
        assert_eq!(s.rank(&ctx(&p, 0, 1)), Rank(2_000_000));
        assert_eq!(s.rank(&ctx(&p, 0, 1)), Rank(3_000_000));
    }

    #[test]
    fn burst_segment_gives_immediate_deadline() {
        let curve = ServiceCurve::new(vec![CurveSegment {
            burst_bytes: 3_000,
            rate_bps: 8_000_000,
        }]);
        let mut s = ScEdf::new(curve);
        let p = Packet::new(0, FlowId(1), 1_000, Nanos(100));
        // First three packets fit the burst: deadline = busy start.
        assert_eq!(s.rank(&ctx(&p, 100, 1)), Rank(100));
        assert_eq!(s.rank(&ctx(&p, 100, 1)), Rank(100));
        assert_eq!(s.rank(&ctx(&p, 100, 1)), Rank(100));
        // Fourth must wait for the rate segment.
        assert_eq!(s.rank(&ctx(&p, 100, 1)), Rank(100 + 1_000_000));
    }

    #[test]
    fn two_segment_concave_curve_takes_max_offset() {
        // min(5000 + 1B/us·Δ, 0 + 10B/us·Δ): for 2000 bytes the binding
        // segment is the second: Δ = 200us... check: seg1 offset = 0 (2000
        // <= 5000), seg2 offset = 2000 bytes / 10B-per-us = 200_000ns.
        let curve = ServiceCurve::new(vec![
            CurveSegment {
                burst_bytes: 5_000,
                rate_bps: 8_000_000,
            },
            CurveSegment {
                burst_bytes: 0,
                rate_bps: 80_000_000,
            },
        ]);
        assert_eq!(curve.deadline_offset(2_000), 200_000);
        // For 10_000 bytes, seg1 binds: (10000-5000) bytes at 1 B/us = 5ms.
        assert_eq!(curve.deadline_offset(10_000), 5_000_000);
    }

    #[test]
    fn busy_period_resets_when_flow_drains() {
        let mut s = ScEdf::new(ServiceCurve::rate(8_000_000));
        let p = Packet::new(0, FlowId(1), 1_000, Nanos(0));
        assert_eq!(s.rank(&ctx(&p, 0, 1)), Rank(1_000_000));
        s.on_depart(FlowId(1), 1_000);
        // Flow idle; new busy period starts at t=5e6.
        assert_eq!(s.rank(&ctx(&p, 5_000_000, 1)), Rank(6_000_000));
    }

    #[test]
    fn flows_have_independent_curves() {
        let mut s = ScEdf::new(ServiceCurve::rate(8_000_000));
        s.set_curve(FlowId(2), ServiceCurve::rate(80_000_000));
        let p = Packet::new(0, FlowId(0), 1_000, Nanos(0));
        let slow = s.rank(&ctx(&p, 0, 1));
        let fast = s.rank(&ctx(&p, 0, 2));
        assert!(fast < slow, "higher-rate curve yields earlier deadline");
    }
}
