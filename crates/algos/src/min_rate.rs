//! Minimum rate guarantees (§3.3, Fig 8).
//!
//! Flows below their guaranteed rate are scheduled with strict priority
//! over flows above it. The paper's construction is a **two-level tree**:
//! leaves run FIFO per flow; the root runs the transaction below, ranking
//! each flow's *transmission opportunity* 0 (under its minimum) or 1
//! (over):
//!
//! ```text
//! tb = tb + min_rate * (now - last_time)
//! if tb > BURST_SIZE: tb = BURST_SIZE
//! if tb > p.size:
//!     p.over_min = 0      // under min rate
//!     tb = tb - p.size
//! else:
//!     p.over_min = 1      // over min rate
//! last_time = now
//! p.rank = p.over_min
//! ```
//!
//! §3.3 explains why collapsing this into a single PIFO is wrong: rank
//! changes would reorder packets *within* a flow. The two-level tree
//! attaches the priority to the flow's next transmission opportunity
//! instead; [`build_min_rate_tree`] constructs it. The single-level
//! (incorrect) variant is exposed as [`MinRateGuarantee`] applied directly
//! so the reordering pathology can be demonstrated (see `repro minrate`).

use crate::prio::Fifo;
use pifo_core::prelude::*;
use std::collections::HashMap;

const NANOBITS_PER_BYTE: i128 = 8 * 1_000_000_000;

#[derive(Debug, Clone)]
struct BucketState {
    tokens: i128,
    last_time: Nanos,
}

/// The Fig 8 scheduling transaction, with one token bucket per flow.
///
/// Rank is 0 while the flow is within its guaranteed rate, 1 beyond it; the
/// PIFO tie-break keeps each priority band FIFO.
#[derive(Debug, Clone)]
pub struct MinRateGuarantee {
    rates_bps: HashMap<FlowId, u64>,
    default_rate_bps: u64,
    burst_bytes: u64,
    buckets: HashMap<FlowId, BucketState>,
}

impl MinRateGuarantee {
    /// Guarantee `default_rate_bps` to every flow, with burst tolerance
    /// `burst_bytes` (Fig 8's `BURST_SIZE`).
    pub fn new(default_rate_bps: u64, burst_bytes: u64) -> Self {
        MinRateGuarantee {
            rates_bps: HashMap::new(),
            default_rate_bps,
            burst_bytes,
            buckets: HashMap::new(),
        }
    }

    /// Override the guarantee for one flow.
    pub fn set_rate(&mut self, flow: FlowId, rate_bps: u64) {
        self.rates_bps.insert(flow, rate_bps);
    }

    fn rate_of(&self, flow: FlowId) -> u64 {
        self.rates_bps
            .get(&flow)
            .copied()
            .unwrap_or(self.default_rate_bps)
    }

    /// Run the token-bucket check for (flow, packet length in bytes) at
    /// `now`; returns 0 (under the minimum) or 1 (over).
    pub fn over_min(&mut self, flow: FlowId, length: u32, now: Nanos) -> u64 {
        let rate = self.rate_of(flow);
        let burst = self.burst_bytes as i128 * NANOBITS_PER_BYTE;
        let b = self.buckets.entry(flow).or_insert(BucketState {
            tokens: burst,
            last_time: Nanos::ZERO,
        });
        let dt = now.saturating_sub(b.last_time).as_nanos() as i128;
        b.tokens = (b.tokens + dt * rate as i128).min(burst);
        let need = length as i128 * NANOBITS_PER_BYTE;
        let over = if b.tokens > need {
            b.tokens -= need;
            0
        } else {
            1
        };
        b.last_time = now;
        over
    }
}

impl SchedulingTransaction for MinRateGuarantee {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(self.over_min(ctx.flow, ctx.packet.length, ctx.now))
    }

    fn name(&self) -> &str {
        "MinRateGuarantee"
    }
}

/// Build the correct two-level min-rate tree of §3.3: one FIFO leaf per
/// flow, the Fig 8 transaction at the root. The classifier maps each
/// listed flow to its leaf; packets from unlisted flows are rejected by
/// `enqueue` with [`TreeError::UnknownNode`].
///
/// # Panics
///
/// Panics if `flows` is empty.
pub fn build_min_rate_tree(
    flows: &[(FlowId, u64)], // (flow, guaranteed rate in bits/s)
    burst_bytes: u64,
) -> ScheduleTree {
    build_min_rate_tree_with_backend(flows, burst_bytes, PifoBackend::default())
}

/// [`build_min_rate_tree`] with every node's PIFOs backed by the given
/// engine.
///
/// # Panics
///
/// Panics if `flows` is empty.
pub fn build_min_rate_tree_with_backend(
    flows: &[(FlowId, u64)], // (flow, guaranteed rate in bits/s)
    burst_bytes: u64,
    backend: PifoBackend,
) -> ScheduleTree {
    let (b, classifier) = min_rate_builder_parts(flows, burst_bytes, backend);
    b.build(classifier).expect("valid tree")
}

/// [`build_min_rate_tree`] buffering in one port of a fabric-wide shared
/// packet pool (§5.1) instead of a private slab: admission is decided by
/// the pool's capacity and
/// [`AdmissionPolicy`].
///
/// # Panics
///
/// Panics if `flows` is empty.
pub fn build_min_rate_tree_in_pool(
    flows: &[(FlowId, u64)], // (flow, guaranteed rate in bits/s)
    burst_bytes: u64,
    backend: PifoBackend,
    pool: PoolHandle,
) -> ScheduleTree {
    let (b, classifier) = min_rate_builder_parts(flows, burst_bytes, backend);
    b.build_in_pool(classifier, pool).expect("valid tree")
}

fn min_rate_builder_parts(
    flows: &[(FlowId, u64)],
    burst_bytes: u64,
    backend: PifoBackend,
) -> (TreeBuilder, Classifier) {
    assert!(!flows.is_empty(), "need at least one flow");
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    let mut root_tx = MinRateGuarantee::new(0, burst_bytes);

    // The root sees child nodes as flows. Node ids are assigned densely
    // (root = 0, leaves = 1..), so the per-child guarantees can be wired
    // into the root transaction before the leaves exist.
    let mut leaf_of: HashMap<FlowId, NodeId> = HashMap::new();
    for (i, (flow, rate)) in flows.iter().enumerate() {
        let leaf_id = NodeId::from_index(i + 1);
        root_tx.set_rate(leaf_id.as_flow(), *rate);
        leaf_of.insert(*flow, leaf_id);
    }

    let root = b.add_root("min-rate-root", Box::new(root_tx));
    for (flow, _) in flows {
        let leaf = b.add_child(root, &format!("fifo-{flow}"), Box::new(Fifo));
        debug_assert_eq!(leaf_of[flow], leaf);
    }

    let classifier: Classifier = Box::new(move |p: &Packet| {
        leaf_of
            .get(&p.flow)
            .copied()
            // Route unknown flows to the sentinel node: enqueue reports
            // UnknownNode instead of silently misclassifying.
            .unwrap_or(NodeId::INVALID)
    });
    (b, classifier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_rate_is_priority_zero() {
        let mut t = MinRateGuarantee::new(8_000_000_000, 10_000); // 1 B/ns
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 0);
    }

    #[test]
    fn hog_exceeds_and_gets_priority_one() {
        let mut t = MinRateGuarantee::new(8_000_000_000, 2_000);
        // Burn through the burst.
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 0);
        // Second packet: bucket has 1000 B left, need strictly-greater.
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 1);
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 1);
    }

    #[test]
    fn bucket_refills_with_time() {
        let mut t = MinRateGuarantee::new(8_000_000_000, 2_000); // 1 B/ns
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 0);
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 1);
        // 1500 ns later the bucket holds ~1000+1500 capped 2000 B.
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(1_500)), 0);
    }

    #[test]
    fn per_flow_buckets_are_independent() {
        let mut t = MinRateGuarantee::new(8_000_000_000, 1_500);
        assert_eq!(t.over_min(FlowId(1), 1_000, Nanos(0)), 0);
        // Flow 2 has its own full bucket.
        assert_eq!(t.over_min(FlowId(2), 1_000, Nanos(0)), 0);
    }

    #[test]
    fn two_level_tree_prioritises_under_min_flow() {
        // Flow 1 guaranteed a high rate (always under min); flow 2 hogs.
        let mut tree = build_min_rate_tree(&[(FlowId(1), 80_000_000_000), (FlowId(2), 8)], 1_500);
        // Hog floods first; guaranteed flow then sends one packet.
        for i in 0..5 {
            tree.enqueue(Packet::new(i, FlowId(2), 1_000, Nanos(i)), Nanos(i))
                .unwrap();
        }
        tree.enqueue(Packet::new(99, FlowId(1), 1_000, Nanos(10)), Nanos(10))
            .unwrap();
        // Hog's first transmission opportunity was under-min (fresh burst),
        // so one hog packet may precede; the guaranteed flow must drain
        // before the hog's over-min bulk.
        let order: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(100)))
            .map(|p| p.id.0)
            .collect();
        let pos_guaranteed = order.iter().position(|&id| id == 99).unwrap();
        assert!(
            pos_guaranteed <= 1,
            "guaranteed flow must be served ahead of the hog's backlog, order: {order:?}"
        );
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn two_level_tree_preserves_intra_flow_order() {
        // §3.3: the 2-level construction must never reorder a flow's own
        // packets, even as the flow crosses the min-rate boundary.
        let mut tree = build_min_rate_tree(&[(FlowId(1), 8_000)], 1_500);
        for i in 0..20 {
            tree.enqueue(
                Packet::new(i, FlowId(1), 1_000, Nanos(i)).with_seq_in_flow(i),
                Nanos(i),
            )
            .unwrap();
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| tree.dequeue(Nanos(1_000)))
            .map(|p| p.seq_in_flow)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "intra-flow FIFO order must hold");
    }

    #[test]
    fn unknown_flow_is_rejected_not_misrouted() {
        let mut tree = build_min_rate_tree(&[(FlowId(1), 8_000)], 1_500);
        let err = tree
            .enqueue(Packet::new(0, FlowId(77), 100, Nanos(0)), Nanos(0))
            .unwrap_err();
        assert!(matches!(err, TreeError::UnknownNode(_)));
    }
}
