//! Stop-and-Go Queueing (§3.2, Fig 7) — a non-work-conserving algorithm
//! providing bounded delay through framing.
//!
//! ```text
//! if now >= frame_end_time:
//!     frame_begin_time = frame_end_time
//!     frame_end_time   = frame_begin_time + T
//! p.rank = frame_end_time
//! ```
//!
//! Time is divided into non-overlapping frames of length `T`; every packet
//! arriving within a frame departs at the end of that frame, flattening
//! any burstiness induced by previous hops. Packets sharing a departure
//! time leave FIFO, guaranteed by the PIFO tie-break (§3.2).

use pifo_core::prelude::*;

/// The Stop-and-Go shaping transaction.
#[derive(Debug, Clone)]
pub struct StopAndGo {
    frame_len: Nanos,
    frame_begin: Nanos,
    frame_end: Nanos,
}

impl StopAndGo {
    /// Frames of length `frame_len`, the first spanning `[0, frame_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is zero.
    pub fn new(frame_len: Nanos) -> Self {
        assert!(frame_len > Nanos::ZERO, "frame length must be positive");
        StopAndGo {
            frame_len,
            frame_begin: Nanos::ZERO,
            frame_end: frame_len,
        }
    }

    /// Start of the current frame (for tests/inspection).
    pub fn frame_begin(&self) -> Nanos {
        self.frame_begin
    }

    /// End of the current frame.
    pub fn frame_end(&self) -> Nanos {
        self.frame_end
    }
}

impl ShapingTransaction for StopAndGo {
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
        // The paper's transaction advances one frame per packet arrival;
        // tiling time means catching up over idle gaps, so loop (a
        // hardware implementation would compute the same with a divide).
        while ctx.now >= self.frame_end {
            self.frame_begin = self.frame_end;
            self.frame_end = self.frame_begin + self.frame_len;
        }
        self.frame_end
    }

    fn name(&self) -> &str {
        "StopAndGo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: p.flow,
        }
    }

    #[test]
    fn arrivals_in_one_frame_share_departure() {
        let mut sg = StopAndGo::new(Nanos(1_000));
        let p = Packet::new(0, FlowId(0), 64, Nanos(0));
        assert_eq!(sg.send_time(&ctx(&p, 10)), Nanos(1_000));
        assert_eq!(sg.send_time(&ctx(&p, 500)), Nanos(1_000));
        assert_eq!(sg.send_time(&ctx(&p, 999)), Nanos(1_000));
    }

    #[test]
    fn next_frame_rolls_over() {
        let mut sg = StopAndGo::new(Nanos(1_000));
        let p = Packet::new(0, FlowId(0), 64, Nanos(0));
        assert_eq!(sg.send_time(&ctx(&p, 999)), Nanos(1_000));
        assert_eq!(sg.send_time(&ctx(&p, 1_000)), Nanos(2_000));
        assert_eq!(sg.send_time(&ctx(&p, 1_001)), Nanos(2_000));
    }

    #[test]
    fn idle_gap_skips_frames() {
        let mut sg = StopAndGo::new(Nanos(1_000));
        let p = Packet::new(0, FlowId(0), 64, Nanos(0));
        assert_eq!(sg.send_time(&ctx(&p, 0)), Nanos(1_000));
        // Nothing for 10 frames; the next arrival lands in frame 11.
        assert_eq!(sg.send_time(&ctx(&p, 10_500)), Nanos(11_000));
        assert_eq!(sg.frame_begin(), Nanos(10_000));
    }

    #[test]
    fn delay_bound_is_at_most_one_frame() {
        // A packet arriving at time t departs at frame_end(t) <= t + T.
        let mut sg = StopAndGo::new(Nanos(777));
        let p = Packet::new(0, FlowId(0), 64, Nanos(0));
        for t in [0u64, 1, 500, 776, 777, 1_000, 5_000, 123_456] {
            let send = sg.send_time(&ctx(&p, t));
            assert!(send.as_nanos() > t, "departure strictly after arrival");
            assert!(
                send.as_nanos() - t <= 777,
                "shaping delay bounded by one frame"
            );
        }
    }

    #[test]
    #[should_panic(expected = "frame length must be positive")]
    fn zero_frame_rejected() {
        let _ = StopAndGo::new(Nanos::ZERO);
    }
}
