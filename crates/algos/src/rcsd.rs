//! Rate-Controlled Service Disciplines (§3.4, item 4).
//!
//! RCSD \[40\] is a *framework*: a non-work-conserving discipline is built
//! from a **rate regulator** (when does a packet become eligible) plus a
//! **packet scheduler** (in what order are eligible packets sent). In the
//! PIFO programming model the regulator is a shaping transaction and the
//! scheduler a scheduling transaction, attached to the same node (§3.4).
//!
//! Two classic members are provided:
//!
//! * [`JitterEdd`] — Jitter Earliest-Due-Date \[39\]: each packet is held
//!   for the time it arrived *ahead of schedule* at the previous hop
//!   (carried in the packet's `slack` field as the "earliness" tag),
//!   reconstructing a fully jittered-free stream; scheduling is then EDF.
//! * [`HierarchicalRoundRobin`] — HRR \[27\]: each flow owns a slot once per
//!   frame; a packet becomes eligible at its flow's next unclaimed slot,
//!   giving every flow at most `slot/frame` of the link.

use pifo_core::prelude::*;
use std::collections::HashMap;

/// Jitter-EDD rate regulator: hold each packet for `packet.slack`
/// nanoseconds (its earliness tag from the previous hop), so all packets
/// experience the same end-to-end delay.
///
/// Combine with [`crate::prio::Edf`] as the scheduling transaction to form
/// the full Jitter-EDD discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitterEdd;

impl ShapingTransaction for JitterEdd {
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
        let hold = ctx.packet.slack.max(0) as u64;
        Nanos(ctx.now.as_nanos() + hold)
    }

    fn name(&self) -> &str {
        "JitterEDD"
    }
}

/// Hierarchical Round Robin rate regulator: flows are assigned one slot of
/// `slot_len` per frame of `frame_len`; a flow's packets become eligible
/// at its slot, one packet per frame.
#[derive(Debug, Clone)]
pub struct HierarchicalRoundRobin {
    frame_len: Nanos,
    slot_len: Nanos,
    slot_of: HashMap<FlowId, u64>,
    next_frame: HashMap<FlowId, u64>,
}

impl HierarchicalRoundRobin {
    /// A regulator with frames of `frame_len`, slots of `slot_len`.
    ///
    /// # Panics
    ///
    /// Panics if `slot_len` is zero or exceeds `frame_len`.
    pub fn new(frame_len: Nanos, slot_len: Nanos) -> Self {
        assert!(slot_len > Nanos::ZERO, "slot length must be positive");
        assert!(slot_len <= frame_len, "slot cannot exceed frame");
        HierarchicalRoundRobin {
            frame_len,
            slot_len,
            slot_of: HashMap::new(),
            next_frame: HashMap::new(),
        }
    }

    /// Assign `flow` the `index`-th slot of every frame.
    ///
    /// # Panics
    ///
    /// Panics if the slot would not fit inside the frame.
    pub fn assign_slot(&mut self, flow: FlowId, index: u64) {
        assert!(
            (index + 1) * self.slot_len.as_nanos() <= self.frame_len.as_nanos(),
            "slot {index} does not fit in the frame"
        );
        self.slot_of.insert(flow, index);
    }
}

impl ShapingTransaction for HierarchicalRoundRobin {
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
        let flow = ctx.flow;
        let slot = self.slot_of.get(&flow).copied().unwrap_or(0);
        let frame_len = self.frame_len.as_nanos();
        let slot_start_offset = slot * self.slot_len.as_nanos();

        // The earliest frame whose slot is still in the future and not
        // already claimed by an earlier packet of this flow.
        let cur_frame = ctx.now.as_nanos() / frame_len;
        let earliest = if ctx.now.as_nanos() <= cur_frame * frame_len + slot_start_offset {
            cur_frame
        } else {
            cur_frame + 1
        };
        let reserved = self.next_frame.entry(flow).or_insert(0);
        let frame = earliest.max(*reserved);
        *reserved = frame + 1;
        Nanos(frame * frame_len + slot_start_offset)
    }

    fn name(&self) -> &str {
        "HRR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64, flow: u32) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: FlowId(flow),
        }
    }

    #[test]
    fn jitter_edd_holds_for_earliness() {
        let mut j = JitterEdd;
        let early = Packet::new(0, FlowId(0), 64, Nanos(100)).with_slack(400);
        assert_eq!(j.send_time(&ctx(&early, 100, 0)), Nanos(500));
        let on_time = Packet::new(1, FlowId(0), 64, Nanos(100)).with_slack(0);
        assert_eq!(j.send_time(&ctx(&on_time, 100, 0)), Nanos(100));
    }

    #[test]
    fn jitter_edd_ignores_negative_earliness() {
        let mut j = JitterEdd;
        let late = Packet::new(0, FlowId(0), 64, Nanos(100)).with_slack(-50);
        assert_eq!(j.send_time(&ctx(&late, 100, 0)), Nanos(100));
    }

    #[test]
    fn hrr_one_packet_per_frame() {
        let mut h = HierarchicalRoundRobin::new(Nanos(1_000), Nanos(100));
        h.assign_slot(FlowId(1), 0);
        let p = Packet::new(0, FlowId(1), 64, Nanos(0));
        // Three packets arriving together spread over three frames.
        assert_eq!(h.send_time(&ctx(&p, 0, 1)), Nanos(0));
        assert_eq!(h.send_time(&ctx(&p, 0, 1)), Nanos(1_000));
        assert_eq!(h.send_time(&ctx(&p, 0, 1)), Nanos(2_000));
    }

    #[test]
    fn hrr_slots_offset_flows() {
        let mut h = HierarchicalRoundRobin::new(Nanos(1_000), Nanos(100));
        h.assign_slot(FlowId(1), 0);
        h.assign_slot(FlowId(2), 3);
        let p = Packet::new(0, FlowId(0), 64, Nanos(0));
        assert_eq!(h.send_time(&ctx(&p, 0, 1)), Nanos(0));
        assert_eq!(h.send_time(&ctx(&p, 0, 2)), Nanos(300));
    }

    #[test]
    fn hrr_missed_slot_waits_next_frame() {
        let mut h = HierarchicalRoundRobin::new(Nanos(1_000), Nanos(100));
        h.assign_slot(FlowId(1), 0);
        let p = Packet::new(0, FlowId(1), 64, Nanos(0));
        // Arrive just after slot 0 of frame 0 has begun.
        assert_eq!(h.send_time(&ctx(&p, 1, 1)), Nanos(1_000));
    }

    #[test]
    #[should_panic(expected = "slot 9 does not fit")]
    fn hrr_slot_overflow_rejected() {
        let mut h = HierarchicalRoundRobin::new(Nanos(1_000), Nanos(200));
        h.assign_slot(FlowId(1), 9);
    }
}
