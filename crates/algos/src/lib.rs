//! # pifo-algos
//!
//! Every scheduling algorithm the paper programs on PIFOs (§2–§3),
//! implemented as scheduling/shaping transactions over `pifo-core`:
//!
//! | Algorithm | Paper | Here |
//! |-----------|-------|------|
//! | STFQ / WFQ | Fig 1 | [`stfq::Stfq`] |
//! | HPFQ (hierarchies) | Fig 3 | [`hpfq::Hierarchy`], [`hpfq::fig3_hpfq`] |
//! | Token Bucket Filter | Fig 4c | [`tbf::TokenBucketFilter`] |
//! | LSTF | Fig 6 | [`lstf::Lstf`] |
//! | Stop-and-Go | Fig 7 | [`stop_and_go::StopAndGo`] |
//! | Min-rate guarantees | Fig 8 | [`min_rate::MinRateGuarantee`], [`min_rate::build_min_rate_tree`] |
//! | FIFO, strict priority, SJF, SRPT, LAS, EDF | §3.4 | [`prio`] |
//! | SC-EDF | §3.4 | [`sced::ScEdf`] |
//! | RCSD (Jitter-EDD, HRR) | §3.4 | [`rcsd`] |
//! | CBQ | §3.4 | [`cbq::build_cbq`] |

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod cbq;
pub mod hpfq;
pub mod lstf;
pub mod min_rate;
pub mod prio;
pub mod rcsd;
pub mod sced;
pub mod stfq;
pub mod stop_and_go;
pub mod tbf;
pub mod weights;

pub use cbq::{build_cbq, build_cbq_in_pool, build_cbq_with_backend, CbqClass, ClassPriority};
pub use hpfq::{fig3_hpfq, fig3_hpfq_in_pool, fig3_hpfq_with_backend, Hierarchy};
pub use lstf::{charge_wait, Lstf};
pub use min_rate::{
    build_min_rate_tree, build_min_rate_tree_in_pool, build_min_rate_tree_with_backend,
    MinRateGuarantee,
};
pub use prio::{Edf, Fifo, Las, Sjf, Srpt, StrictPriority};
pub use rcsd::{HierarchicalRoundRobin, JitterEdd};
pub use sced::{CurveSegment, ScEdf, ServiceCurve};
pub use stfq::Stfq;
pub use stop_and_go::StopAndGo;
pub use tbf::TokenBucketFilter;
pub use weights::WeightTable;
