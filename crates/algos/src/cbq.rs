//! Class-Based Queueing (§3.4, item 5).
//!
//! CBQ [19, 20] schedules among classes by a static class priority, and
//! within each class by fair queueing. In the PIFO model this is a
//! two-level tree: the root ranks each class's transmission opportunities
//! by the class priority (strict priority with FIFO tie-break), and each
//! class leaf runs STFQ among its flows.

use crate::stfq::Stfq;
use crate::weights::WeightTable;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// Root transaction: rank = static priority of the child class the
/// element refers to.
#[derive(Debug, Clone)]
pub struct ClassPriority {
    prio_of_child: HashMap<FlowId, u64>,
}

impl ClassPriority {
    /// Priorities keyed by child-node flow ids (lower = served first).
    pub fn new(prio_of_child: HashMap<FlowId, u64>) -> Self {
        ClassPriority { prio_of_child }
    }
}

impl SchedulingTransaction for ClassPriority {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(
            self.prio_of_child
                .get(&ctx.flow)
                .copied()
                .unwrap_or(u64::MAX),
        )
    }

    fn name(&self) -> &str {
        "ClassPriority"
    }
}

/// One CBQ class: a priority, plus its member flows with fair-queueing
/// weights.
#[derive(Debug, Clone)]
pub struct CbqClass {
    /// Display name.
    pub name: String,
    /// Inter-class priority (lower = served first).
    pub priority: u64,
    /// `(flow, weight)` members.
    pub flows: Vec<(FlowId, u64)>,
}

/// Build a CBQ tree from class descriptions with the default PIFO
/// backend. Returns the tree and the flow→leaf map.
///
/// # Panics
///
/// Panics if `classes` is empty or a flow appears in two classes.
pub fn build_cbq(classes: &[CbqClass]) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    build_cbq_with_backend(classes, PifoBackend::default())
}

/// [`build_cbq`] with every node's PIFOs backed by the given engine.
pub fn build_cbq_with_backend(
    classes: &[CbqClass],
    backend: PifoBackend,
) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    let (b, classifier, map) = cbq_builder_parts(classes, backend);
    let tree = b.build(classifier).expect("valid CBQ tree");
    (tree, map)
}

/// [`build_cbq`] buffering in one port of a fabric-wide shared packet
/// pool (§5.1) instead of a private slab: admission is decided by the
/// pool's capacity and [`AdmissionPolicy`].
pub fn build_cbq_in_pool(
    classes: &[CbqClass],
    backend: PifoBackend,
    pool: PoolHandle,
) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    let (b, classifier, map) = cbq_builder_parts(classes, backend);
    let tree = b.build_in_pool(classifier, pool).expect("valid CBQ tree");
    (tree, map)
}

fn cbq_builder_parts(
    classes: &[CbqClass],
    backend: PifoBackend,
) -> (TreeBuilder, Classifier, HashMap<FlowId, NodeId>) {
    assert!(!classes.is_empty(), "CBQ needs at least one class");
    let mut prio_of_child = HashMap::new();
    let mut leaf_of: HashMap<FlowId, NodeId> = HashMap::new();
    for (i, class) in classes.iter().enumerate() {
        // Root = node 0; class i = node i+1 (dense preorder assignment).
        let child = NodeId::from_index(i + 1);
        prio_of_child.insert(child.as_flow(), class.priority);
        for (f, _) in &class.flows {
            let prev = leaf_of.insert(*f, child);
            assert!(prev.is_none(), "flow {f} appears in two CBQ classes");
        }
    }

    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    let root = b.add_root("CBQ_Root", Box::new(ClassPriority::new(prio_of_child)));
    for class in classes {
        let table = WeightTable::from_pairs(class.flows.iter().copied());
        b.add_child(root, &class.name, Box::new(Stfq::new(table)));
    }

    let map = leaf_of.clone();
    let classifier: Classifier =
        Box::new(move |p: &Packet| leaf_of.get(&p.flow).copied().unwrap_or(NodeId::INVALID));
    (b, classifier, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<CbqClass> {
        vec![
            CbqClass {
                name: "voice".into(),
                priority: 0,
                flows: vec![(FlowId(0), 1)],
            },
            CbqClass {
                name: "bulk".into(),
                priority: 1,
                flows: vec![(FlowId(1), 1), (FlowId(2), 3)],
            },
        ]
    }

    #[test]
    fn higher_priority_class_drains_first() {
        let (mut tree, _) = build_cbq(&classes());
        // Bulk backlog first, then a voice packet arrives late.
        for i in 0..5 {
            tree.enqueue(Packet::new(i, FlowId(1), 1_000, Nanos(i)), Nanos(i))
                .unwrap();
        }
        tree.enqueue(Packet::new(99, FlowId(0), 200, Nanos(50)), Nanos(50))
            .unwrap();
        let first = tree.dequeue(Nanos(60)).unwrap();
        assert_eq!(first.flow, FlowId(0), "voice preempts buffered bulk");
    }

    #[test]
    fn within_class_fair_queueing() {
        let (mut tree, _) = build_cbq(&classes());
        let mut id = 0;
        for _ in 0..40 {
            for f in [1u32, 2u32] {
                tree.enqueue(Packet::new(id, FlowId(f), 1_000, Nanos(0)), Nanos(0))
                    .unwrap();
                id += 1;
            }
        }
        let mut counts = [0u32; 3];
        for _ in 0..40 {
            let p = tree.dequeue(Nanos(1)).unwrap();
            counts[p.flow.0 as usize] += 1;
        }
        assert!(
            counts[2] >= 28 && counts[2] <= 32,
            "weight-3 member should get ~30/40, got {}",
            counts[2]
        );
    }

    #[test]
    fn structure_and_leaf_map() {
        let (tree, leaf_of) = build_cbq(&classes());
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.node_name(tree.root()), "CBQ_Root");
        assert_eq!(leaf_of[&FlowId(1)], leaf_of[&FlowId(2)]);
        assert_ne!(leaf_of[&FlowId(0)], leaf_of[&FlowId(1)]);
    }

    #[test]
    #[should_panic(expected = "appears in two CBQ classes")]
    fn duplicate_flow_rejected() {
        let mut cs = classes();
        cs[1].flows.push((FlowId(0), 1));
        let _ = build_cbq(&cs);
    }
}
