//! Start-Time Fair Queueing (Fig 1) — the paper's canonical scheduling
//! transaction and its practical approximation of Weighted Fair Queueing.
//!
//! ```text
//! f = flow(p)
//! if f in last_finish:
//!     p.start = max(virtual_time, last_finish[f])
//! else:
//!     p.start = virtual_time
//! last_finish[f] = p.start + p.length / f.weight
//! p.rank = p.start
//! ```
//!
//! `virtual_time` tracks the virtual start time of the last *dequeued*
//! packet (§2.1), which is why the transaction implements
//! [`SchedulingTransaction::on_dequeue`].
//!
//! All arithmetic is integer fixed-point with [`VT_SHIFT`] fractional bits:
//! `length / weight` becomes `(length << VT_SHIFT) / weight`, exactly as a
//! hardware rank computation would be specified.

use crate::weights::WeightTable;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// The STFQ scheduling transaction.
#[derive(Debug, Clone)]
pub struct Stfq {
    weights: WeightTable,
    virtual_time: u64,
    last_finish: HashMap<FlowId, u64>,
}

impl Default for Stfq {
    fn default() -> Self {
        Self::new(WeightTable::new())
    }
}

impl Stfq {
    /// STFQ with the given per-flow weights.
    pub fn new(weights: WeightTable) -> Self {
        Stfq {
            weights,
            virtual_time: 0,
            last_finish: HashMap::new(),
        }
    }

    /// Convenience: equal weights for all flows (plain fair queueing).
    pub fn unweighted() -> Self {
        Self::new(WeightTable::new())
    }

    /// Current virtual time (fixed-point, [`VT_SHIFT`] fractional bits).
    pub fn virtual_time(&self) -> u64 {
        self.virtual_time
    }

    /// The virtual finish tag last assigned to `flow`, if any.
    pub fn last_finish(&self, flow: FlowId) -> Option<u64> {
        self.last_finish.get(&flow).copied()
    }
}

impl SchedulingTransaction for Stfq {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        let f = ctx.flow;
        let start = match self.last_finish.get(&f) {
            Some(&fin) => self.virtual_time.max(fin),
            None => self.virtual_time,
        };
        let w = self.weights.get(f);
        let service = ((ctx.packet.length as u64) << VT_SHIFT) / w;
        // A zero-length packet must still advance the finish tag by at
        // least one quantum, or two such packets would tie forever.
        let service = service.max(1);
        self.last_finish.insert(f, start.saturating_add(service));
        Rank(start)
    }

    fn on_dequeue(&mut self, rank: Rank, _ctx: &DeqCtx) {
        // Virtual time = virtual start time of the last dequeued packet.
        // Ranks are only ever popped in PIFO order *among buffered
        // packets*, but a late-arriving flow can briefly push virtual time
        // observations backwards; never regress.
        self.virtual_time = self.virtual_time.max(rank.value());
    }

    fn name(&self) -> &str {
        "STFQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: p.flow,
        }
    }

    #[test]
    fn first_packet_starts_at_virtual_time_zero() {
        let mut s = Stfq::unweighted();
        let p = Packet::new(0, FlowId(1), 1000, Nanos(0));
        assert_eq!(s.rank(&ctx(&p, 0)), Rank(0));
        assert_eq!(s.last_finish(FlowId(1)), Some(1000 << VT_SHIFT));
    }

    #[test]
    fn backlogged_flow_ranks_advance_by_length_over_weight() {
        let mut s = Stfq::new(WeightTable::from_pairs([(FlowId(1), 2)]));
        let p = Packet::new(0, FlowId(1), 1000, Nanos(0));
        let r1 = s.rank(&ctx(&p, 0));
        let r2 = s.rank(&ctx(&p, 1));
        let r3 = s.rank(&ctx(&p, 2));
        assert_eq!(r1, Rank(0));
        assert_eq!(r2, Rank((1000 << VT_SHIFT) / 2));
        assert_eq!(r3, Rank(2 * ((1000 << VT_SHIFT) / 2)));
    }

    #[test]
    fn heavier_flow_gets_denser_ranks() {
        // Weight-4 flow accumulates virtual time 4x slower than weight-1:
        // over one virtual-time unit it fits 4x the bytes.
        let mut s = Stfq::new(WeightTable::from_pairs([(FlowId(1), 1), (FlowId(2), 4)]));
        let p1 = Packet::new(0, FlowId(1), 1000, Nanos(0));
        let p2 = Packet::new(1, FlowId(2), 1000, Nanos(0));
        s.rank(&ctx(&p1, 0));
        s.rank(&ctx(&p2, 0));
        let f1 = s.last_finish(FlowId(1)).unwrap();
        let f2 = s.last_finish(FlowId(2)).unwrap();
        assert_eq!(f1, 4 * f2);
    }

    #[test]
    fn new_flow_starts_at_current_virtual_time_not_zero() {
        // The property UPS cannot express (§7): a newly active flow starts
        // at the *current* virtual time, so it cannot claim bandwidth
        // retroactively.
        let mut s = Stfq::unweighted();
        let p = Packet::new(0, FlowId(1), 500, Nanos(0));
        let r = s.rank(&ctx(&p, 0));
        // Simulate dequeue of that packet: virtual time advances to start.
        s.on_dequeue(
            Rank(r.value() + (500 << VT_SHIFT)), // pretend time moved on
            &DeqCtx {
                now: Nanos(10),
                flow: FlowId(1),
            },
        );
        let q = Packet::new(1, FlowId(9), 500, Nanos(10));
        let r2 = s.rank(&ctx(&q, 10));
        assert_eq!(r2, Rank(500 << VT_SHIFT), "late flow starts at vt, not 0");
    }

    #[test]
    fn virtual_time_never_regresses() {
        let mut s = Stfq::unweighted();
        s.on_dequeue(
            Rank(100),
            &DeqCtx {
                now: Nanos(0),
                flow: FlowId(0),
            },
        );
        s.on_dequeue(
            Rank(50),
            &DeqCtx {
                now: Nanos(1),
                flow: FlowId(0),
            },
        );
        assert_eq!(s.virtual_time(), 100);
    }

    #[test]
    fn idle_flow_rejoins_at_virtual_time() {
        let mut s = Stfq::unweighted();
        let p = Packet::new(0, FlowId(1), 100, Nanos(0));
        s.rank(&ctx(&p, 0)); // finish tag = 100<<8
                             // Virtual time races far ahead while flow 1 is idle.
        s.on_dequeue(
            Rank(1_000_000),
            &DeqCtx {
                now: Nanos(5),
                flow: FlowId(2),
            },
        );
        let r = s.rank(&ctx(&p, 6));
        assert_eq!(
            r,
            Rank(1_000_000),
            "start = max(vt, last_finish) picks vt for an idle flow"
        );
    }

    #[test]
    fn zero_length_packets_still_order() {
        let mut s = Stfq::unweighted();
        let p = Packet::new(0, FlowId(1), 0, Nanos(0));
        let r1 = s.rank(&ctx(&p, 0));
        let r2 = s.rank(&ctx(&p, 0));
        assert!(r2 > r1, "finish tags must strictly increase within a flow");
    }

    /// End-to-end through a single PIFO: two backlogged flows with weights
    /// 1:3 are served ~1:3 by packet count (equal packet sizes).
    #[test]
    fn weighted_sharing_through_pifo() {
        let mut b = TreeBuilder::new();
        let root = b.add_root(
            "wfq",
            Box::new(Stfq::new(WeightTable::from_pairs([
                (FlowId(1), 1),
                (FlowId(2), 3),
            ]))),
        );
        let mut tree = b.build(Box::new(move |_| root)).unwrap();

        // Both flows keep 40 packets buffered.
        let mut id = 0;
        for _ in 0..40 {
            for f in [1u32, 2u32] {
                tree.enqueue(Packet::new(id, FlowId(f), 1000, Nanos(0)), Nanos(0))
                    .unwrap();
                id += 1;
            }
        }
        // Serve 40 packets; count the split.
        let mut counts = [0u32; 3];
        for _ in 0..40 {
            let p = tree.dequeue(Nanos(1)).unwrap();
            counts[p.flow.0 as usize] += 1;
        }
        assert_eq!(counts[1] + counts[2], 40);
        assert!(
            counts[2] >= 28 && counts[2] <= 32,
            "weight-3 flow should get ~30 of 40 slots, got {}",
            counts[2]
        );
    }
}
