//! Least Slack-Time First (§3.1, Fig 6).
//!
//! ```text
//! p.slack = p.slack - p.prev_wait_time
//! p.rank  = p.slack
//! ```
//!
//! A packet's slack — time remaining until its deadline — is initialised at
//! the end host and decremented by the queueing wait at each switch. The
//! decrement happens in the data path (the switch tags packets with
//! timestamps before and after the queue); in this workspace the multi-hop
//! simulator (`pifo-sim`) performs it via [`charge_wait`]. The scheduling
//! transaction itself just ranks by the already-updated slack.

use pifo_core::prelude::*;

/// The LSTF scheduling transaction: rank = current slack.
///
/// Negative slack (a packet already past its deadline) maps to rank 0 —
/// maximally urgent — preserving the LSTF order among late packets is not
/// meaningful once the deadline is blown.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lstf;

impl SchedulingTransaction for Lstf {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.slack.max(0) as u64)
    }

    fn name(&self) -> &str {
        "LSTF"
    }
}

/// Decrement a packet's slack by the wait it experienced at the switch it
/// is leaving: `wait = departure - arrival` (Fig 6's `prev_wait_time`).
/// Call when the packet is dequeued for transmission.
pub fn charge_wait(packet: &mut Packet, departure: Nanos) {
    let wait = departure.saturating_sub(packet.arrival).as_nanos();
    packet.slack -= wait as i64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_slack() {
        let mut t = Lstf;
        let p = Packet::new(0, FlowId(0), 64, Nanos(0)).with_slack(5_000);
        let r = t.rank(&EnqCtx {
            packet: &p,
            now: Nanos(0),
            flow: p.flow,
        });
        assert_eq!(r, Rank(5_000));
    }

    #[test]
    fn negative_slack_is_most_urgent() {
        let mut t = Lstf;
        let late = Packet::new(0, FlowId(0), 64, Nanos(0)).with_slack(-100);
        let ok = Packet::new(1, FlowId(0), 64, Nanos(0)).with_slack(1);
        let r_late = t.rank(&EnqCtx {
            packet: &late,
            now: Nanos(0),
            flow: late.flow,
        });
        let r_ok = t.rank(&EnqCtx {
            packet: &ok,
            now: Nanos(0),
            flow: ok.flow,
        });
        assert!(r_late < r_ok);
        assert_eq!(r_late, Rank(0));
    }

    #[test]
    fn charge_wait_decrements_by_queueing_time() {
        let mut p = Packet::new(0, FlowId(0), 64, Nanos(100)).with_slack(10_000);
        charge_wait(&mut p, Nanos(2_600));
        assert_eq!(p.slack, 10_000 - 2_500);
    }

    #[test]
    fn charge_wait_can_drive_slack_negative() {
        let mut p = Packet::new(0, FlowId(0), 64, Nanos(0)).with_slack(100);
        charge_wait(&mut p, Nanos(500));
        assert_eq!(p.slack, -400);
    }

    /// Through a PIFO: the packet closest to its deadline leaves first,
    /// regardless of arrival order.
    #[test]
    fn least_slack_leaves_first() {
        let mut q: SortedArrayPifo<u64> = SortedArrayPifo::new();
        let mut t = Lstf;
        for (id, slack) in [(0u64, 9_000i64), (1, 2_000), (2, 5_000)] {
            let p = Packet::new(id, FlowId(0), 64, Nanos(0)).with_slack(slack);
            let r = t.rank(&EnqCtx {
                packet: &p,
                now: Nanos(0),
                flow: p.flow,
            });
            q.push(r, id);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
