//! Per-flow weight tables shared by the fair-queueing transactions.

use pifo_core::prelude::*;
use std::collections::HashMap;

/// Maps flows to scheduling weights. Flows without an explicit entry get
/// `default_weight` (1 unless overridden), so a weight table is never a
/// correctness hazard — only a fairness-policy input.
#[derive(Debug, Clone)]
pub struct WeightTable {
    weights: HashMap<FlowId, u64>,
    default_weight: u64,
}

impl Default for WeightTable {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightTable {
    /// Empty table: every flow weighs 1.
    pub fn new() -> Self {
        WeightTable {
            weights: HashMap::new(),
            default_weight: 1,
        }
    }

    /// Build from `(flow, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero (a zero-weight flow would never finish).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (FlowId, u64)>) -> Self {
        let mut t = WeightTable::new();
        for (f, w) in pairs {
            t.set(f, w);
        }
        t
    }

    /// Set the weight of one flow.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn set(&mut self, flow: FlowId, weight: u64) {
        assert!(weight > 0, "flow weight must be positive");
        self.weights.insert(flow, weight);
    }

    /// Change the weight applied to flows without an explicit entry.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn set_default(&mut self, weight: u64) {
        assert!(weight > 0, "default weight must be positive");
        self.default_weight = weight;
    }

    /// The weight of `flow`.
    pub fn get(&self, flow: FlowId) -> u64 {
        self.weights
            .get(&flow)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weight_is_one() {
        let t = WeightTable::new();
        assert_eq!(t.get(FlowId(42)), 1);
    }

    #[test]
    fn explicit_weights_override() {
        let t = WeightTable::from_pairs([(FlowId(1), 3), (FlowId(2), 7)]);
        assert_eq!(t.get(FlowId(1)), 3);
        assert_eq!(t.get(FlowId(2)), 7);
        assert_eq!(t.get(FlowId(3)), 1);
    }

    #[test]
    fn set_default_changes_fallback() {
        let mut t = WeightTable::new();
        t.set_default(5);
        assert_eq!(t.get(FlowId(9)), 5);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut t = WeightTable::new();
        t.set(FlowId(0), 0);
    }
}
