//! Token Bucket Filter shaping transaction (§2.3, Fig 4c).
//!
//! ```text
//! tokens = min(tokens + r * (now - last_time), B)
//! if p.length <= tokens:
//!     p.send_time = now
//! else:
//!     p.send_time = now + (p.length - tokens) / r
//! tokens = tokens - p.length
//! last_time = now
//! p.rank = p.send_time
//! ```
//!
//! Note `tokens` may go negative after the unconditional subtraction —
//! that "borrowing" is what spaces out a run of over-rate packets at
//! exactly the token rate. All arithmetic is integer, in units of
//! *nanobits* (1e-9 bit): at a rate of `r` bits/second, one nanosecond
//! replenishes exactly `r` nanobits, so no division is needed on the
//! refill path.

use pifo_core::prelude::*;

const NANOBITS_PER_BYTE: i128 = 8 * 1_000_000_000;

/// Token bucket filter: rate-limit to `rate_bps` with burst `burst_bytes`.
#[derive(Debug, Clone)]
pub struct TokenBucketFilter {
    rate_bps: u64,
    burst_nanobits: i128,
    tokens: i128,
    last_time: Nanos,
}

impl TokenBucketFilter {
    /// A filter limiting to `rate_bps` bits/second with a burst allowance
    /// of `burst_bytes` bytes. The bucket starts full (a fresh class may
    /// send a full burst immediately), as in standard TBF practice.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0, "token rate must be positive");
        let burst = burst_bytes as i128 * NANOBITS_PER_BYTE;
        TokenBucketFilter {
            rate_bps,
            burst_nanobits: burst,
            tokens: burst,
            last_time: Nanos::ZERO,
        }
    }

    /// Current token level in (possibly negative) bytes ×1e9×8 precision;
    /// exposed for tests.
    pub fn tokens_nanobits(&self) -> i128 {
        self.tokens
    }

    /// The configured rate in bits/second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }
}

impl ShapingTransaction for TokenBucketFilter {
    fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
        let now = ctx.now;
        let dt = now.saturating_sub(self.last_time).as_nanos() as i128;
        self.tokens = (self.tokens + dt * self.rate_bps as i128).min(self.burst_nanobits);

        let need = ctx.packet.length as i128 * NANOBITS_PER_BYTE;
        let send = if need <= self.tokens {
            now
        } else {
            let deficit = need - self.tokens;
            // Ceiling division: the packet may not leave until the last
            // missing token has arrived.
            let wait_ns = (deficit + self.rate_bps as i128 - 1) / self.rate_bps as i128;
            Nanos(now.as_nanos() + wait_ns as u64)
        };
        self.tokens -= need;
        self.last_time = now;
        send
    }

    fn name(&self) -> &str {
        "TokenBucketFilter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: p.flow,
        }
    }

    #[test]
    fn within_burst_sends_immediately() {
        let mut tbf = TokenBucketFilter::new(10_000_000, 15_000); // 10 Mb/s, 15 KB
        let p = Packet::new(0, FlowId(0), 1_500, Nanos(0));
        assert_eq!(tbf.send_time(&ctx(&p, 0)), Nanos(0));
    }

    #[test]
    fn burst_exhaustion_delays_at_token_rate() {
        // Burst = exactly one packet; the second packet must wait for its
        // tokens: 1500 B at 10 Mb/s = 1.2 ms.
        let mut tbf = TokenBucketFilter::new(10_000_000, 1_500);
        let p = Packet::new(0, FlowId(0), 1_500, Nanos(0));
        assert_eq!(tbf.send_time(&ctx(&p, 0)), Nanos(0));
        let send2 = tbf.send_time(&ctx(&p, 0));
        assert_eq!(send2, Nanos(1_200_000), "1500B/10Mbps = 1.2ms");
        // Third packet: another 1.2 ms later (borrowed bucket).
        let send3 = tbf.send_time(&ctx(&p, 0));
        assert_eq!(send3, Nanos(2_400_000));
    }

    #[test]
    fn tokens_replenish_over_time() {
        let mut tbf = TokenBucketFilter::new(8_000_000_000, 1_000); // 1 byte/ns
        let p = Packet::new(0, FlowId(0), 1_000, Nanos(0));
        assert_eq!(tbf.send_time(&ctx(&p, 0)), Nanos(0)); // bucket empty now
                                                          // After 500 ns, 500 bytes of tokens exist; a 1000 B packet waits
                                                          // 500 more ns.
        let send = tbf.send_time(&ctx(&p, 500));
        assert_eq!(send, Nanos(1_000));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut tbf = TokenBucketFilter::new(8_000_000_000, 2_000); // 1 byte/ns, 2 KB burst
        let p = Packet::new(0, FlowId(0), 1_000, Nanos(0));
        // A long idle period must not accumulate more than the burst:
        // at t=1e6 the bucket holds 2000 B, not 1e6 B.
        let _ = tbf.send_time(&ctx(&p, 1_000_000)); // consumes 1000 B
        let _ = tbf.send_time(&ctx(&p, 1_000_000)); // consumes the rest
        let send3 = tbf.send_time(&ctx(&p, 1_000_000));
        assert_eq!(
            send3,
            Nanos(1_001_000),
            "third packet exceeds the 2 KB burst and waits 1000 ns"
        );
    }

    #[test]
    fn sustained_rate_converges_to_r() {
        // Send 100 x 1500 B packets back-to-back at t=0 through a 10 Mb/s
        // filter with a 15 KB burst: the last send time should be close to
        // (total_bytes - burst) * 8 / rate.
        let mut tbf = TokenBucketFilter::new(10_000_000, 15_000);
        let p = Packet::new(0, FlowId(0), 1_500, Nanos(0));
        let mut last = Nanos::ZERO;
        for _ in 0..100 {
            last = tbf.send_time(&ctx(&p, 0));
        }
        let expected_ns = ((100 * 1_500 - 15_000) as u64) * 8 * 1_000_000_000 / 10_000_000;
        assert_eq!(last.as_nanos(), expected_ns);
    }

    #[test]
    #[should_panic(expected = "token rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucketFilter::new(0, 1000);
    }
}
