//! Hierarchical Packet Fair Queueing (§2.2, Fig 3) and generic weighted
//! hierarchies of any depth.
//!
//! HPFQ apportions link capacity between classes, then recursively between
//! sub-classes, down to the leaves. Each node of the hierarchy runs WFQ
//! (here: its STFQ approximation, Fig 1) among its children; leaves run
//! WFQ among their flows.
//!
//! [`Hierarchy`] is a declarative description of such a tree;
//! [`Hierarchy::build`] turns it into a runnable [`ScheduleTree`]. The
//! paper's headline configuration — a 5-level hierarchy with programmable
//! scheduling at each level (§1) — is a five-deep [`Hierarchy`].

use crate::stfq::Stfq;
use crate::weights::WeightTable;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// A node of a declarative scheduling hierarchy.
#[derive(Debug, Clone)]
pub enum Hierarchy {
    /// An interior class: WFQ among the named, weighted children.
    Class {
        /// Display name (used in tree introspection).
        name: String,
        /// `(weight, child)` pairs; weights are relative to siblings.
        children: Vec<(u64, Hierarchy)>,
    },
    /// A leaf class: WFQ among the listed flows.
    Leaf {
        /// Display name.
        name: String,
        /// `(flow, weight)` pairs scheduled by this leaf.
        flows: Vec<(FlowId, u64)>,
    },
}

impl Hierarchy {
    /// Convenience constructor for an interior class.
    pub fn class(name: &str, children: Vec<(u64, Hierarchy)>) -> Hierarchy {
        Hierarchy::Class {
            name: name.to_string(),
            children,
        }
    }

    /// Convenience constructor for a leaf class.
    pub fn leaf(name: &str, flows: Vec<(FlowId, u64)>) -> Hierarchy {
        Hierarchy::Leaf {
            name: name.to_string(),
            flows,
        }
    }

    /// Depth of the hierarchy (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Hierarchy::Leaf { .. } => 1,
            Hierarchy::Class { children, .. } => {
                1 + children.iter().map(|(_, c)| c.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Build the runnable tree with the default PIFO backend. Every flow
    /// must appear in exactly one leaf; packets from unknown flows are
    /// rejected at `enqueue`.
    ///
    /// Returns the tree and the flow→leaf map (useful for tests and for
    /// wiring shapers onto specific classes by name afterwards).
    pub fn build(&self) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
        self.build_with_backend(PifoBackend::default())
    }

    /// [`build`](Self::build), with every node's PIFOs backed by the given
    /// queue engine.
    pub fn build_with_backend(
        &self,
        backend: PifoBackend,
    ) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
        let (b, classifier, map) = self.builder_parts(backend);
        let tree = b
            .build(classifier)
            .expect("hierarchy produces a valid tree");
        (tree, map)
    }

    /// [`build_with_backend`](Self::build_with_backend), buffering in one
    /// port of a fabric-wide shared packet pool (§5.1) instead of a
    /// private slab: admission is decided by the pool's capacity and
    /// [`AdmissionPolicy`], shared with
    /// every other tree built into the same pool.
    pub fn build_in_pool(
        &self,
        backend: PifoBackend,
        pool: PoolHandle,
    ) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
        let (b, classifier, map) = self.builder_parts(backend);
        let tree = b
            .build_in_pool(classifier, pool)
            .expect("hierarchy produces a valid tree");
        (tree, map)
    }

    /// The common construction: a populated builder, the flow→leaf
    /// classifier, and the flow→leaf map.
    fn builder_parts(
        &self,
        backend: PifoBackend,
    ) -> (TreeBuilder, Classifier, HashMap<FlowId, NodeId>) {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        let mut leaf_of: HashMap<FlowId, NodeId> = HashMap::new();

        // Recursive construction. The parent's STFQ weight table is keyed
        // by child NodeId-as-flow, so children register their weights with
        // the parent *after* getting their ids — we therefore construct
        // each node's transaction with the weights of its children, which
        // requires ids before transactions. Trick: ids are assigned
        // densely in add order, so do a first pass assigning ids, then a
        // second pass creating nodes. Simpler: build child subtrees first
        // into a flat spec list. Here we exploit determinism: create the
        // node with an empty weight table, collect (child_id, weight), and
        // since `TreeBuilder` owns the transaction we pre-compute weights
        // by a dry-run id assignment.
        //
        // Dry run: compute the id each node will get (preorder).
        fn assign_ids(h: &Hierarchy, next: &mut u32, out: &mut Vec<u32>) {
            let my = *next;
            *next += 1;
            out.push(my);
            if let Hierarchy::Class { children, .. } = h {
                for (_, c) in children {
                    assign_ids(c, next, out);
                }
            }
        }
        let mut ids = Vec::new();
        let mut next = 0;
        assign_ids(self, &mut next, &mut ids);

        // Real construction pass.
        fn build_node(
            h: &Hierarchy,
            parent: Option<NodeId>,
            b: &mut TreeBuilder,
            next: &mut u32,
            leaf_of: &mut HashMap<FlowId, NodeId>,
        ) -> NodeId {
            let my_id = *next;
            *next += 1;
            match h {
                Hierarchy::Leaf { name, flows } => {
                    let table = WeightTable::from_pairs(flows.iter().copied());
                    let tx = Box::new(Stfq::new(table));
                    let id = match parent {
                        None => b.add_root(name, tx),
                        Some(p) => b.add_child(p, name, tx),
                    };
                    debug_assert_eq!(id.index() as u32, my_id);
                    for (f, _) in flows {
                        let prev = leaf_of.insert(*f, id);
                        assert!(prev.is_none(), "flow {f} appears in two leaves");
                    }
                    id
                }
                Hierarchy::Class { name, children } => {
                    // Children ids follow in preorder; compute each child's
                    // subtree size to know its id before building it.
                    fn size(h: &Hierarchy) -> u32 {
                        match h {
                            Hierarchy::Leaf { .. } => 1,
                            Hierarchy::Class { children, .. } => {
                                1 + children.iter().map(|(_, c)| size(c)).sum::<u32>()
                            }
                        }
                    }
                    let mut table = WeightTable::new();
                    let mut child_id = my_id + 1;
                    for (w, c) in children {
                        table.set(FlowId(child_id), *w);
                        child_id += size(c);
                    }
                    let tx = Box::new(Stfq::new(table));
                    let id = match parent {
                        None => b.add_root(name, tx),
                        Some(p) => b.add_child(p, name, tx),
                    };
                    debug_assert_eq!(id.index() as u32, my_id);
                    for (_, c) in children {
                        build_node(c, Some(id), b, next, leaf_of);
                    }
                    id
                }
            }
        }
        let mut next = 0;
        build_node(self, None, &mut b, &mut next, &mut leaf_of);

        let map = leaf_of.clone();
        let classifier: Classifier =
            Box::new(move |p: &Packet| leaf_of.get(&p.flow).copied().unwrap_or(NodeId::INVALID));
        (b, classifier, map)
    }
}

/// The exact HPFQ example of Fig 3: Root splits 1:9 between Left and
/// Right; Left splits 3:7 between flows A and B; Right splits 4:6 between
/// C and D. Flow ids: A=0, B=1, C=2, D=3.
pub fn fig3_hpfq() -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    fig3_hpfq_with_backend(PifoBackend::default())
}

/// [`fig3_hpfq`] with every node's PIFOs backed by the given engine.
pub fn fig3_hpfq_with_backend(backend: PifoBackend) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    fig3_hierarchy().build_with_backend(backend)
}

/// [`fig3_hpfq`] buffering in one port of a fabric-wide shared packet
/// pool (see [`Hierarchy::build_in_pool`]).
pub fn fig3_hpfq_in_pool(
    backend: PifoBackend,
    pool: PoolHandle,
) -> (ScheduleTree, HashMap<FlowId, NodeId>) {
    fig3_hierarchy().build_in_pool(backend, pool)
}

fn fig3_hierarchy() -> Hierarchy {
    Hierarchy::class(
        "WFQ_Root",
        vec![
            (
                1,
                Hierarchy::leaf("WFQ_Left", vec![(FlowId(0), 3), (FlowId(1), 7)]),
            ),
            (
                9,
                Hierarchy::leaf("WFQ_Right", vec![(FlowId(2), 4), (FlowId(3), 6)]),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_structure() {
        let (tree, leaf_of) = fig3_hpfq();
        assert_eq!(tree.node_count(), 3);
        let root = tree.root();
        assert_eq!(tree.children(root).len(), 2);
        assert_eq!(tree.node_name(root), "WFQ_Root");
        let left = tree.children(root)[0];
        let right = tree.children(root)[1];
        assert_eq!(tree.node_name(left), "WFQ_Left");
        assert_eq!(tree.node_name(right), "WFQ_Right");
        assert_eq!(leaf_of[&FlowId(0)], left);
        assert_eq!(leaf_of[&FlowId(1)], left);
        assert_eq!(leaf_of[&FlowId(2)], right);
        assert_eq!(leaf_of[&FlowId(3)], right);
    }

    #[test]
    fn depth_counts_levels() {
        let (t, _) = fig3_hpfq();
        assert_eq!(t.node_count(), 3);
        let h = Hierarchy::class(
            "a",
            vec![(
                1,
                Hierarchy::class("b", vec![(1, Hierarchy::leaf("c", vec![(FlowId(0), 1)]))]),
            )],
        );
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn five_level_hierarchy_builds_and_runs() {
        // The paper's headline: 5 levels, programmable at each (§1).
        let leaf = |name: &str, f: u32| Hierarchy::leaf(name, vec![(FlowId(f), 1)]);
        let h = Hierarchy::class(
            "L1",
            vec![
                (
                    1,
                    Hierarchy::class(
                        "L2a",
                        vec![(
                            1,
                            Hierarchy::class(
                                "L3",
                                vec![(
                                    1,
                                    Hierarchy::class(
                                        "L4",
                                        vec![(1, leaf("L5", 0)), (2, leaf("L5b", 1))],
                                    ),
                                )],
                            ),
                        )],
                    ),
                ),
                (3, leaf("L2b", 2)),
            ],
        );
        assert_eq!(h.depth(), 5);
        let (mut tree, _) = h.build();
        for i in 0..30 {
            tree.enqueue(
                Packet::new(i, FlowId((i % 3) as u32), 1_000, Nanos(i)),
                Nanos(i),
            )
            .unwrap();
        }
        let mut n = 0;
        while tree.dequeue(Nanos(1_000)).is_some() {
            n += 1;
        }
        assert_eq!(n, 30);
    }

    #[test]
    #[should_panic(expected = "appears in two leaves")]
    fn duplicate_flow_rejected() {
        let h = Hierarchy::class(
            "root",
            vec![
                (1, Hierarchy::leaf("x", vec![(FlowId(0), 1)])),
                (1, Hierarchy::leaf("y", vec![(FlowId(0), 1)])),
            ],
        );
        let _ = h.build();
    }

    /// Two hierarchies built into one shared pool compete for the same
    /// slots: one tree's backlog can exhaust admission for its sibling,
    /// and draining reopens it.
    #[test]
    fn hierarchies_in_one_pool_share_admission() {
        use pifo_core::pool::{AdmissionPolicy, SharedPacketPool};
        let pool = SharedPacketPool::new(4, AdmissionPolicy::Unlimited).into_shared();
        let (mut a, _) = fig3_hpfq_in_pool(PifoBackend::default(), pool.register_port());
        let (mut b, _) = fig3_hpfq_in_pool(PifoBackend::Bucket, pool.register_port());
        for i in 0..4 {
            a.enqueue(
                Packet::new(i, FlowId((i % 4) as u32), 1_000, Nanos(i)),
                Nanos(i),
            )
            .unwrap();
        }
        let err = b
            .enqueue(Packet::new(9, FlowId(0), 1_000, Nanos(9)), Nanos(9))
            .unwrap_err();
        assert!(matches!(err, TreeError::BufferFull(_)));
        assert_eq!(pool.stats().live, 4);
        // Draining the sibling reopens admission.
        a.dequeue(Nanos(10)).expect("backlogged");
        b.enqueue(Packet::new(10, FlowId(0), 1_000, Nanos(10)), Nanos(10))
            .unwrap();
        assert_eq!(pool.borrow().port_occupancy(0), 3);
        assert_eq!(pool.borrow().port_occupancy(1), 1);
    }

    #[test]
    fn unknown_flow_rejected_at_enqueue() {
        let (mut tree, _) = fig3_hpfq();
        let err = tree
            .enqueue(Packet::new(0, FlowId(55), 100, Nanos(0)), Nanos(0))
            .unwrap_err();
        assert!(matches!(err, TreeError::UnknownNode(_)));
    }

    /// Weighted splits at two levels: drain order respects 1:9 and the
    /// leaf-level 4:6 within a window.
    #[test]
    fn two_level_shares_roughly_hold_by_count() {
        let (mut tree, _) = fig3_hpfq();
        // Backlog all four flows with equal-size packets.
        let mut id = 0;
        for _ in 0..100 {
            for f in 0..4u32 {
                tree.enqueue(Packet::new(id, FlowId(f), 1_000, Nanos(0)), Nanos(0))
                    .unwrap();
                id += 1;
            }
        }
        let mut count = [0usize; 4];
        for _ in 0..100 {
            let p = tree.dequeue(Nanos(1)).unwrap();
            count[p.flow.0 as usize] += 1;
        }
        let left = count[0] + count[1];
        let right = count[2] + count[3];
        // Expect ~10 left vs ~90 right.
        assert!((5..=15).contains(&left), "left got {left} of 100");
        assert!((85..=95).contains(&right), "right got {right} of 100");
        // Within Right, C:D should be ~4:6 of right's share.
        let c_share = count[2] as f64 / right as f64;
        assert!(
            (c_share - 0.4).abs() < 0.1,
            "C got {:.2} of Right (want ~0.4)",
            c_share
        );
    }
}
