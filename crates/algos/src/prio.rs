//! Fine-grained priority scheduling transactions (§3.4, item 1) and FIFO.
//!
//! These algorithms "schedule the packet with the lowest value of a field
//! initialized by the end host": strict priorities (IP TOS), Shortest Job
//! First (flow size), Shortest Remaining Processing Time (remaining flow
//! size), Least Attained Service (service received), Earliest Deadline
//! First (time to deadline). Each is a one-line scheduling transaction.

use pifo_core::prelude::*;

/// First-In First-Out: rank = wall-clock arrival time (§3.4, item 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingTransaction for Fifo {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.now.as_nanos())
    }

    fn name(&self) -> &str {
        "FIFO"
    }
}

/// Strict priority scheduling: rank = priority class (lower = better).
/// FIFO among packets of equal class, by the PIFO tie-break.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrictPriority;

impl SchedulingTransaction for StrictPriority {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.class as u64)
    }

    fn name(&self) -> &str {
        "StrictPriority"
    }
}

/// Shortest Job First: rank = total flow size.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sjf;

impl SchedulingTransaction for Sjf {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.flow_size)
    }

    fn name(&self) -> &str {
        "SJF"
    }
}

/// Shortest Remaining Processing Time: rank = remaining flow bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srpt;

impl SchedulingTransaction for Srpt {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.remaining)
    }

    fn name(&self) -> &str {
        "SRPT"
    }
}

/// Least Attained Service: rank = bytes of service the flow has received.
#[derive(Debug, Clone, Copy, Default)]
pub struct Las;

impl SchedulingTransaction for Las {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.attained)
    }

    fn name(&self) -> &str {
        "LAS"
    }
}

/// Earliest Deadline First: rank = absolute deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf;

impl SchedulingTransaction for Edf {
    fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
        Rank(ctx.packet.deadline.as_nanos())
    }

    fn name(&self) -> &str {
        "EDF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(p: &'a Packet, now: u64) -> EnqCtx<'a> {
        EnqCtx {
            packet: p,
            now: Nanos(now),
            flow: p.flow,
        }
    }

    #[test]
    fn fifo_ranks_by_arrival() {
        let mut t = Fifo;
        let p = Packet::new(0, FlowId(0), 64, Nanos(5));
        assert_eq!(t.rank(&ctx(&p, 5)), Rank(5));
        assert_eq!(t.rank(&ctx(&p, 9)), Rank(9));
    }

    #[test]
    fn strict_priority_ranks_by_class() {
        let mut t = StrictPriority;
        let hi = Packet::new(0, FlowId(0), 64, Nanos(0)).with_class(0);
        let lo = Packet::new(1, FlowId(0), 64, Nanos(0)).with_class(3);
        assert!(t.rank(&ctx(&hi, 0)) < t.rank(&ctx(&lo, 0)));
    }

    #[test]
    fn sjf_prefers_short_flows() {
        let mut t = Sjf;
        let small = Packet::new(0, FlowId(0), 64, Nanos(0)).with_flow_size(1_000);
        let big = Packet::new(1, FlowId(1), 64, Nanos(0)).with_flow_size(1_000_000);
        assert!(t.rank(&ctx(&small, 0)) < t.rank(&ctx(&big, 0)));
    }

    #[test]
    fn srpt_tracks_remaining_not_total() {
        let mut t = Srpt;
        // A big flow that is nearly done beats a small flow just starting.
        let nearly_done = Packet::new(0, FlowId(0), 64, Nanos(0))
            .with_flow_size(1_000_000)
            .with_remaining(100);
        let starting = Packet::new(1, FlowId(1), 64, Nanos(0))
            .with_flow_size(1_000)
            .with_remaining(1_000);
        assert!(t.rank(&ctx(&nearly_done, 0)) < t.rank(&ctx(&starting, 0)));
    }

    #[test]
    fn las_prefers_least_served() {
        let mut t = Las;
        let newcomer = Packet::new(0, FlowId(0), 64, Nanos(0)).with_attained(0);
        let hog = Packet::new(1, FlowId(1), 64, Nanos(0)).with_attained(10_000_000);
        assert!(t.rank(&ctx(&newcomer, 0)) < t.rank(&ctx(&hog, 0)));
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut t = Edf;
        let urgent = Packet::new(0, FlowId(0), 64, Nanos(0)).with_deadline(Nanos(100));
        let lax = Packet::new(1, FlowId(1), 64, Nanos(0)).with_deadline(Nanos(900));
        assert!(t.rank(&ctx(&urgent, 0)) < t.rank(&ctx(&lax, 0)));
    }

    /// Same-class packets stay FIFO through a PIFO (strict priority's
    /// intra-class guarantee).
    #[test]
    fn strict_priority_is_fifo_within_class() {
        let mut q: SortedArrayPifo<u64> = SortedArrayPifo::new();
        let mut t = StrictPriority;
        for i in 0..5u64 {
            let p = Packet::new(i, FlowId(0), 64, Nanos(i)).with_class(2);
            let r = t.rank(&EnqCtx {
                packet: &p,
                now: Nanos(i),
                flow: p.flow,
            });
            q.push(r, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
