//! The §5.2 correctness claim, as property tests: under the documented
//! precondition — **ranks within a flow increase monotonically** — the
//! flow-scheduler + rank-store block dequeues *exactly* like a reference
//! PIFO over the same stream, while only ever sorting per-flow heads.
//!
//! One caveat the paper leaves implicit (documented in
//! `block::tests::cross_flow_tie_break_deviation`): when two *different*
//! flows carry elements of *equal* rank, the block breaks the tie by
//! flow-scheduler insertion order, which after a reinsert differs from
//! global enqueue order. Exact equivalence therefore holds for rank
//! streams without cross-flow ties; these tests construct ranks that are
//! globally unique (`rank = base * N_FLOWS + flow`), preserving per-flow
//! monotonicity.

use pifo_core::prelude::*;
use pifo_hw::{BlockConfig, LogicalPifoId, PifoBlock};
use proptest::prelude::*;

/// An abstract op stream where pushes carry per-flow rank *increments*,
/// guaranteeing monotonicity by construction.
#[derive(Debug, Clone)]
enum Op {
    /// (flow, rank_increment)
    Push(u32, u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u32..6, 0u64..50).prop_map(|(f, d)| Op::Push(f, d)),
            2 => Just(Op::Pop),
        ],
        0..300,
    )
}

proptest! {
    /// Block dequeue order == reference PIFO dequeue order, element by
    /// element, under monotone per-flow ranks — against every *exact*
    /// software backend, so the hw model is checked to be equivalent to
    /// the whole exact family, not just the sorted array. (The
    /// approximate software backends intentionally diverge from the
    /// hardware's exact schedule.)
    #[test]
    fn block_equals_reference_pifo(ops in ops()) {
        for backend in PifoBackend::EXACT {
            let cfg = BlockConfig {
                n_flows: 8,
                n_logical_pifos: 2,
                rank_store_capacity: 1024,
                ..BlockConfig::default()
            };
            let mut block = PifoBlock::new(cfg).strict_monotonic(true);
            let mut reference: BoxedPifo<(u32, u64)> = backend.make();
            let l = LogicalPifoId(0);
            let mut next_rank = [0u64; 6];
            let mut meta = 0u64;

            for op in &ops {
                match op {
                    Op::Push(f, d) => {
                        next_rank[*f as usize] += d + 1;
                        // Globally unique, per-flow monotone (see module doc).
                        let r = Rank(next_rank[*f as usize] * 8 + *f as u64);
                        block.enqueue(l, FlowId(*f), r, meta).unwrap();
                        reference.push(r, (*f, meta));
                        meta += 1;
                    }
                    Op::Pop => {
                        let got = block.dequeue(l);
                        let want = reference.pop();
                        match (got, want) {
                            (None, None) => {}
                            (Some((gr, gf, gm)), Some((wr, (wf, wm)))) => {
                                prop_assert_eq!(gr, wr, "[{}] rank order must match", backend);
                                prop_assert_eq!(gf.0, wf, "[{}] flow must match", backend);
                                prop_assert_eq!(gm, wm, "[{}] FIFO tie-break must match", backend);
                            }
                            (g, w) => prop_assert!(false, "[{backend}] divergence: block={g:?} ref={w:?}"),
                        }
                    }
                }
                prop_assert_eq!(block.len(l), reference.len());
            }
            // Drain both to the end.
            loop {
                let got = block.dequeue(l);
                let want = reference.pop();
                prop_assert_eq!(got.is_some(), want.is_some());
                if got.is_none() { break; }
                let (gr, _, gm) = got.unwrap();
                let (wr, (_, wm)) = want.unwrap();
                prop_assert_eq!(gr, wr);
                prop_assert_eq!(gm, wm);
            }
        }
    }

    /// The scaling claim behind Fig 12: the flow scheduler never holds
    /// more entries than there are active flows, no matter how deep the
    /// per-flow backlogs get (sorting 1K flows instead of 60K packets).
    #[test]
    fn flow_scheduler_bounded_by_flow_count(
        pushes in proptest::collection::vec((0u32..4, 1u64..10), 1..200)
    ) {
        let cfg = BlockConfig {
            n_flows: 8,
            n_logical_pifos: 2,
            rank_store_capacity: 1024,
            ..BlockConfig::default()
        };
        let mut block = PifoBlock::new(cfg).strict_monotonic(true);
        let l = LogicalPifoId(0);
        let mut next_rank = [0u64; 4];
        for (i, (f, d)) in pushes.iter().enumerate() {
            next_rank[*f as usize] += d;
            block
                .enqueue(l, FlowId(*f), Rank(next_rank[*f as usize]), i as u64)
                .unwrap();
            prop_assert!(block.active_flows() <= 4, "heads only");
        }
    }

    /// Two logical PIFOs sharing one block stay order-isolated: the
    /// dequeue sequence of each lpifo equals what a dedicated PIFO would
    /// have produced — with the two dedicated references deliberately on
    /// *different* backends to cross-check the whole family at once.
    #[test]
    fn logical_pifos_share_block_without_interference(
        pushes in proptest::collection::vec((0u32..4, 0u16..2, 1u64..20), 1..200)
    ) {
        let cfg = BlockConfig {
            n_flows: 8,
            n_logical_pifos: 2,
            rank_store_capacity: 1024,
            ..BlockConfig::default()
        };
        let mut block = PifoBlock::new(cfg).strict_monotonic(true);
        let mut refs: Vec<BoxedPifo<u64>> =
            vec![PifoBackend::Heap.make(), PifoBackend::Bucket.make()];
        // Per-(lpifo, flow) monotone, globally unique ranks.
        let mut next_rank = [[0u64; 4]; 2];
        for (i, (f, l, d)) in pushes.iter().enumerate() {
            next_rank[*l as usize][*f as usize] += d;
            let r = Rank(next_rank[*l as usize][*f as usize] * 8 + (*l as u64) * 4 + *f as u64);
            block
                .enqueue(LogicalPifoId(*l), FlowId(*f), r, i as u64)
                .unwrap();
            refs[*l as usize].push(r, i as u64);
        }
        for l in 0..2u16 {
            loop {
                let got = block.dequeue(LogicalPifoId(l));
                let want = refs[l as usize].pop();
                prop_assert_eq!(got.is_some(), want.is_some());
                match (got, want) {
                    (Some((gr, _, gm)), Some((wr, wm))) => {
                        prop_assert_eq!(gr, wr);
                        prop_assert_eq!(gm, wm);
                    }
                    _ => break,
                }
            }
        }
    }
}
