//! Model-based property test for the rank store: the linked-list FIFO
//! bank over a shared cell pool (§5.2, Table 1) must behave exactly like
//! a map of plain queues, under any interleaving of pushes and pops,
//! while never leaking or double-freeing cells.

use pifo_core::prelude::*;
use pifo_hw::{HwError, LogicalPifoId, RankStore};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone)]
enum Op {
    Push { lpifo: u16, flow: u32, tag: u64 },
    Pop { lpifo: u16, flow: u32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u16..3, 0u32..4, any::<u64>()).prop_map(|(l, f, t)| Op::Push {
                lpifo: l,
                flow: f,
                tag: t
            }),
            2 => (0u16..3, 0u32..4).prop_map(|(l, f)| Op::Pop { lpifo: l, flow: f }),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn rank_store_equals_queue_map(capacity in 1usize..64, ops in ops()) {
        let mut store = RankStore::new(capacity);
        let mut model: HashMap<(u16, u32), VecDeque<u64>> = HashMap::new();
        let mut model_total = 0usize;

        for op in ops {
            match op {
                Op::Push { lpifo, flow, tag } => {
                    let got = store.push_back(
                        LogicalPifoId(lpifo),
                        FlowId(flow),
                        Rank(tag),
                        tag,
                    );
                    if model_total < capacity {
                        prop_assert!(got.is_ok(), "pool has space");
                        model.entry((lpifo, flow)).or_default().push_back(tag);
                        model_total += 1;
                    } else {
                        prop_assert_eq!(got, Err(HwError::RankStoreFull));
                    }
                }
                Op::Pop { lpifo, flow } => {
                    let got = store.pop_front(LogicalPifoId(lpifo), FlowId(flow));
                    let want = model
                        .get_mut(&(lpifo, flow))
                        .and_then(|q| q.pop_front());
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some(tag)) => {
                            prop_assert_eq!(e.meta, tag, "FIFO order per (lpifo, flow)");
                            prop_assert_eq!(e.rank, Rank(tag));
                            model_total -= 1;
                        }
                        (g, w) => prop_assert!(false, "divergence: {g:?} vs {w:?}"),
                    }
                }
            }
            // Global accounting never drifts: occupancy + free = capacity.
            prop_assert_eq!(store.occupied(), model_total);
            prop_assert_eq!(store.occupied() + store.free(), capacity);
            // Per-FIFO lengths agree.
            for (&(l, f), q) in &model {
                prop_assert_eq!(
                    store.len(LogicalPifoId(l), FlowId(f)),
                    q.len(),
                    "length of ({}, {})", l, f
                );
            }
        }

        // Drain everything; the free list must fully reassemble.
        for (&(l, f), q) in model.iter_mut() {
            while let Some(tag) = q.pop_front() {
                let e = store.pop_front(LogicalPifoId(l), FlowId(f)).expect("model says present");
                prop_assert_eq!(e.meta, tag);
            }
        }
        prop_assert_eq!(store.occupied(), 0);
        prop_assert_eq!(store.free(), capacity);
    }
}
