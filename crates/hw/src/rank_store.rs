//! The rank store (§5.2, Fig 12): a bank of FIFOs in SRAM holding element
//! ranks *beyond the per-flow head* (heads live in the flow scheduler).
//!
//! Implemented exactly as Table 1 prices it: a dynamically-allocated pool
//! of cells with
//!
//! * a **next-pointer** array (linked lists through the pool),
//! * a **free list** threaded through the same pointer array, and
//! * **head / tail / count** state per (logical PIFO, flow) FIFO.
//!
//! Any FIFO can grow and shrink subject to the shared pool limit — the
//! same structure switches use for packet data buffering, which is why the
//! paper reuses it.

use crate::config::LogicalPifoId;
use crate::error::HwError;
use pifo_core::prelude::*;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// One stored element: rank plus opaque metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredElement {
    /// The element's rank.
    pub rank: Rank,
    /// Opaque metadata carried with the element (§4.2).
    pub meta: u64,
}

#[derive(Debug, Clone, Copy)]
struct FifoState {
    head: u32,
    tail: u32,
    count: u32,
}

/// A dynamically-allocated bank of FIFOs over a fixed cell pool.
#[derive(Debug)]
pub struct RankStore {
    cells: Vec<StoredElement>,
    next: Vec<u32>,
    free_head: u32,
    free_count: usize,
    fifos: HashMap<(LogicalPifoId, FlowId), FifoState>,
}

impl RankStore {
    /// A rank store with `capacity` cells.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or does not fit 32-bit cell indices.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rank store needs capacity");
        assert!(capacity < NIL as usize, "capacity too large for pointers");
        // Thread the free list through `next`.
        let mut next: Vec<u32> = (1..=capacity as u32).collect();
        next[capacity - 1] = NIL;
        RankStore {
            cells: vec![
                StoredElement {
                    rank: Rank(0),
                    meta: 0
                };
                capacity
            ],
            next,
            free_head: 0,
            free_count: capacity,
            fifos: HashMap::new(),
        }
    }

    /// Total cells in the pool.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Cells currently free.
    pub fn free(&self) -> usize {
        self.free_count
    }

    /// Cells currently occupied.
    pub fn occupied(&self) -> usize {
        self.capacity() - self.free_count
    }

    /// Elements queued in one FIFO.
    pub fn len(&self, lpifo: LogicalPifoId, flow: FlowId) -> usize {
        self.fifos
            .get(&(lpifo, flow))
            .map_or(0, |f| f.count as usize)
    }

    /// True if the given FIFO holds no elements.
    pub fn is_empty(&self, lpifo: LogicalPifoId, flow: FlowId) -> bool {
        self.len(lpifo, flow) == 0
    }

    /// Append an element to the tail of `(lpifo, flow)`'s FIFO.
    pub fn push_back(
        &mut self,
        lpifo: LogicalPifoId,
        flow: FlowId,
        rank: Rank,
        meta: u64,
    ) -> Result<(), HwError> {
        if self.free_head == NIL {
            return Err(HwError::RankStoreFull);
        }
        // Pop a cell off the free list.
        let cell = self.free_head;
        self.free_head = self.next[cell as usize];
        self.free_count -= 1;

        self.cells[cell as usize] = StoredElement { rank, meta };
        self.next[cell as usize] = NIL;

        match self.fifos.get_mut(&(lpifo, flow)) {
            Some(f) if f.count > 0 => {
                self.next[f.tail as usize] = cell;
                f.tail = cell;
                f.count += 1;
            }
            _ => {
                self.fifos.insert(
                    (lpifo, flow),
                    FifoState {
                        head: cell,
                        tail: cell,
                        count: 1,
                    },
                );
            }
        }
        Ok(())
    }

    /// Pop the head of `(lpifo, flow)`'s FIFO.
    pub fn pop_front(&mut self, lpifo: LogicalPifoId, flow: FlowId) -> Option<StoredElement> {
        let f = self.fifos.get_mut(&(lpifo, flow))?;
        if f.count == 0 {
            return None;
        }
        let cell = f.head;
        let elem = self.cells[cell as usize];
        f.head = self.next[cell as usize];
        f.count -= 1;
        if f.count == 0 {
            self.fifos.remove(&(lpifo, flow));
        }
        // Return the cell to the free list.
        self.next[cell as usize] = self.free_head;
        self.free_head = cell;
        self.free_count += 1;
        Some(elem)
    }

    /// Peek the head of a FIFO without removing it.
    pub fn peek_front(&self, lpifo: LogicalPifoId, flow: FlowId) -> Option<StoredElement> {
        let f = self.fifos.get(&(lpifo, flow))?;
        if f.count == 0 {
            return None;
        }
        Some(self.cells[f.head as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LogicalPifoId {
        LogicalPifoId(x)
    }
    fn f(x: u32) -> FlowId {
        FlowId(x)
    }

    #[test]
    fn fifo_order_within_flow() {
        let mut rs = RankStore::new(16);
        rs.push_back(l(0), f(1), Rank(30), 100).unwrap();
        rs.push_back(l(0), f(1), Rank(10), 101).unwrap();
        rs.push_back(l(0), f(1), Rank(20), 102).unwrap();
        // FIFO, *not* sorted: the rank store never reorders (§5.2 relies
        // on per-flow ranks increasing).
        assert_eq!(rs.pop_front(l(0), f(1)).unwrap().meta, 100);
        assert_eq!(rs.pop_front(l(0), f(1)).unwrap().meta, 101);
        assert_eq!(rs.pop_front(l(0), f(1)).unwrap().meta, 102);
        assert!(rs.pop_front(l(0), f(1)).is_none());
    }

    #[test]
    fn fifos_are_isolated() {
        let mut rs = RankStore::new(16);
        rs.push_back(l(0), f(1), Rank(1), 10).unwrap();
        rs.push_back(l(0), f(2), Rank(2), 20).unwrap();
        rs.push_back(l(1), f(1), Rank(3), 30).unwrap();
        assert_eq!(rs.len(l(0), f(1)), 1);
        assert_eq!(rs.len(l(0), f(2)), 1);
        assert_eq!(rs.len(l(1), f(1)), 1);
        assert_eq!(rs.pop_front(l(0), f(2)).unwrap().meta, 20);
        assert_eq!(rs.pop_front(l(1), f(1)).unwrap().meta, 30);
        assert_eq!(rs.pop_front(l(0), f(1)).unwrap().meta, 10);
    }

    #[test]
    fn pool_exhaustion_and_reuse() {
        let mut rs = RankStore::new(4);
        for i in 0..4 {
            rs.push_back(l(0), f(i), Rank(i as u64), i as u64).unwrap();
        }
        assert_eq!(rs.free(), 0);
        assert_eq!(
            rs.push_back(l(0), f(9), Rank(9), 9),
            Err(HwError::RankStoreFull)
        );
        // Freeing one cell makes room for exactly one push.
        rs.pop_front(l(0), f(2)).unwrap();
        assert_eq!(rs.free(), 1);
        rs.push_back(l(0), f(9), Rank(9), 9).unwrap();
        assert_eq!(rs.free(), 0);
    }

    #[test]
    fn one_fifo_can_take_whole_pool() {
        // Dynamic allocation: no static per-flow partition.
        let mut rs = RankStore::new(8);
        for i in 0..8 {
            rs.push_back(l(0), f(1), Rank(i), i).unwrap();
        }
        assert_eq!(rs.len(l(0), f(1)), 8);
        for i in 0..8 {
            assert_eq!(rs.pop_front(l(0), f(1)).unwrap().meta, i);
        }
        assert_eq!(rs.free(), 8);
    }

    #[test]
    fn interleaved_push_pop_keeps_lists_consistent() {
        let mut rs = RankStore::new(8);
        for round in 0..50u64 {
            rs.push_back(l(0), f(0), Rank(round), round).unwrap();
            rs.push_back(l(0), f(1), Rank(round), round + 1000).unwrap();
            if round % 2 == 0 {
                assert!(rs.pop_front(l(0), f(0)).is_some());
            }
            if round % 3 == 0 {
                assert!(rs.pop_front(l(0), f(1)).is_some());
            }
            // Drain opportunistically to stay under capacity.
            while rs.free() < 2 {
                rs.pop_front(l(0), f(0))
                    .or_else(|| rs.pop_front(l(0), f(1)))
                    .unwrap();
            }
            assert_eq!(rs.occupied() + rs.free(), 8);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut rs = RankStore::new(4);
        rs.push_back(l(0), f(0), Rank(5), 55).unwrap();
        assert_eq!(rs.peek_front(l(0), f(0)).unwrap().meta, 55);
        assert_eq!(rs.len(l(0), f(0)), 1);
    }

    #[test]
    fn empty_pops_and_peeks_are_none() {
        let mut rs = RankStore::new(4);
        assert!(rs.pop_front(l(0), f(0)).is_none());
        assert!(rs.peek_front(l(3), f(7)).is_none());
        assert!(rs.is_empty(l(0), f(0)));
    }
}
