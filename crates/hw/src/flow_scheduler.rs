//! The flow scheduler (§5.2, Fig 12): a small array, held in flip-flops,
//! of **per-flow head elements**, kept sorted by rank across *all* logical
//! PIFOs of the block.
//!
//! Hardware operation per §5.2:
//!
//! * **push** — compare the incoming rank against all entries in parallel,
//!   priority-encode the first 0→1 transition, shift and insert;
//! * **pop(lpifo)** — compare all entries' logical PIFO ids in parallel,
//!   priority-encode the first match, remove by shifting.
//!
//! The software model keeps a sorted `Vec` and performs the same
//! insert/scan; the sizes involved (≤ 2048 entries, Table 2) make the
//! linear scan an honest stand-in for the parallel comparators.
//!
//! PFC pause masking (§6.2) is supported: paused flows are skipped by the
//! pop's priority encoder and resume transparently.

use crate::config::LogicalPifoId;
use crate::error::HwError;
use pifo_core::prelude::*;
use std::collections::HashSet;

/// One flow-scheduler entry: the head element of a (logical PIFO, flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// Rank of the flow's head element.
    pub rank: Rank,
    /// The logical PIFO this flow belongs to.
    pub lpifo: LogicalPifoId,
    /// The flow.
    pub flow: FlowId,
    /// Metadata of the head element.
    pub meta: u64,
}

/// The sorted array of flow heads.
#[derive(Debug)]
pub struct FlowScheduler {
    entries: Vec<(FlowEntry, u64)>, // (entry, seq) sorted by (rank, seq)
    capacity: usize,
    seq: u64,
    paused: HashSet<FlowId>,
}

impl FlowScheduler {
    /// A flow scheduler with room for `capacity` flows.
    pub fn new(capacity: usize) -> Self {
        FlowScheduler {
            entries: Vec::with_capacity(capacity),
            capacity,
            seq: 0,
            paused: HashSet::new(),
        }
    }

    /// Number of entries (active flows).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no flow is active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in flows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a flow-head entry (parallel compare + priority encode +
    /// shift, Fig 13 stage 1–2). Equal ranks keep insertion order.
    pub fn push(&mut self, e: FlowEntry) -> Result<(), HwError> {
        if self.entries.len() >= self.capacity {
            return Err(HwError::FlowSchedulerFull);
        }
        let idx = self.entries.partition_point(|(x, _)| x.rank <= e.rank);
        self.entries.insert(idx, (e, self.seq));
        self.seq += 1;
        Ok(())
    }

    /// Pop the head-most entry of `lpifo` (skipping PFC-paused flows).
    pub fn pop(&mut self, lpifo: LogicalPifoId) -> Option<FlowEntry> {
        let idx = self
            .entries
            .iter()
            .position(|(e, _)| e.lpifo == lpifo && !self.paused.contains(&e.flow))?;
        Some(self.entries.remove(idx).0)
    }

    /// Peek the head-most entry of `lpifo` without removing it.
    pub fn peek(&self, lpifo: LogicalPifoId) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .map(|(e, _)| e)
            .find(|e| e.lpifo == lpifo && !self.paused.contains(&e.flow))
    }

    /// True if `(lpifo, flow)` currently has a head entry in the array.
    pub fn contains(&self, lpifo: LogicalPifoId, flow: FlowId) -> bool {
        self.entries
            .iter()
            .any(|(e, _)| e.lpifo == lpifo && e.flow == flow)
    }

    /// PFC (§6.2): mask `flow` out of dequeue consideration.
    pub fn pause(&mut self, flow: FlowId) {
        self.paused.insert(flow);
    }

    /// PFC (§6.2): unmask `flow`.
    pub fn resume(&mut self, flow: FlowId) {
        self.paused.remove(&flow);
    }

    /// Whether `flow` is currently paused.
    pub fn is_paused(&self, flow: FlowId) -> bool {
        self.paused.contains(&flow)
    }

    /// Iterate entries in rank order (tests/introspection).
    pub fn iter(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter().map(|(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(rank: u64, lpifo: u16, flow: u32) -> FlowEntry {
        FlowEntry {
            rank: Rank(rank),
            lpifo: LogicalPifoId(lpifo),
            flow: FlowId(flow),
            meta: rank * 10,
        }
    }

    #[test]
    fn pop_returns_lowest_rank_of_lpifo() {
        let mut fs = FlowScheduler::new(8);
        fs.push(e(30, 0, 1)).unwrap();
        fs.push(e(10, 0, 2)).unwrap();
        fs.push(e(20, 1, 3)).unwrap();
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().rank, Rank(10));
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().rank, Rank(30));
        assert!(fs.pop(LogicalPifoId(0)).is_none());
        assert_eq!(fs.pop(LogicalPifoId(1)).unwrap().rank, Rank(20));
    }

    #[test]
    fn entries_of_different_lpifos_share_one_sorted_array() {
        // §5.2: "we keep elements sorted by rank, regardless of which
        // logical PIFO they belong to".
        let mut fs = FlowScheduler::new(8);
        fs.push(e(5, 1, 1)).unwrap();
        fs.push(e(3, 0, 2)).unwrap();
        fs.push(e(4, 1, 3)).unwrap();
        let ranks: Vec<u64> = fs.iter().map(|x| x.rank.value()).collect();
        assert_eq!(ranks, vec![3, 4, 5]);
    }

    #[test]
    fn equal_ranks_fifo() {
        let mut fs = FlowScheduler::new(8);
        fs.push(e(7, 0, 1)).unwrap();
        fs.push(e(7, 0, 2)).unwrap();
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().flow, FlowId(1));
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().flow, FlowId(2));
    }

    #[test]
    fn capacity_enforced() {
        let mut fs = FlowScheduler::new(2);
        fs.push(e(1, 0, 1)).unwrap();
        fs.push(e(2, 0, 2)).unwrap();
        assert_eq!(fs.push(e(3, 0, 3)), Err(HwError::FlowSchedulerFull));
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn pfc_pause_masks_flow_and_resume_restores() {
        let mut fs = FlowScheduler::new(8);
        fs.push(e(1, 0, 1)).unwrap();
        fs.push(e(2, 0, 2)).unwrap();
        fs.pause(FlowId(1));
        assert!(fs.is_paused(FlowId(1)));
        // The paused flow is skipped even though it has the lowest rank.
        assert_eq!(fs.peek(LogicalPifoId(0)).unwrap().flow, FlowId(2));
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().flow, FlowId(2));
        fs.resume(FlowId(1));
        assert_eq!(fs.pop(LogicalPifoId(0)).unwrap().flow, FlowId(1));
    }

    #[test]
    fn pause_all_means_none_ready() {
        let mut fs = FlowScheduler::new(8);
        fs.push(e(1, 0, 1)).unwrap();
        fs.pause(FlowId(1));
        assert!(fs.pop(LogicalPifoId(0)).is_none());
        assert_eq!(fs.len(), 1, "masked, not removed");
    }

    #[test]
    fn contains_tracks_membership() {
        let mut fs = FlowScheduler::new(8);
        assert!(!fs.contains(LogicalPifoId(0), FlowId(1)));
        fs.push(e(1, 0, 1)).unwrap();
        assert!(fs.contains(LogicalPifoId(0), FlowId(1)));
        fs.pop(LogicalPifoId(0));
        assert!(!fs.contains(LogicalPifoId(0), FlowId(1)));
    }
}
