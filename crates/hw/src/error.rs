//! Errors surfaced by the hardware model.

use crate::config::{BlockId, LogicalPifoId};
use core::fmt;

/// Failure modes of block/mesh operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwError {
    /// The rank store has no free cells.
    RankStoreFull,
    /// The flow scheduler's sorted array is full (too many active flows).
    FlowSchedulerFull,
    /// A flow id beyond the configured flow count.
    FlowOutOfRange,
    /// A logical PIFO id beyond the configured count.
    LpifoOutOfRange(LogicalPifoId),
    /// A block id beyond the mesh size.
    BlockOutOfRange(BlockId),
    /// The per-cycle enqueue port of a block is already claimed.
    EnqueuePortBusy(BlockId),
    /// The per-cycle dequeue port of a block is already claimed.
    DequeuePortBusy(BlockId),
    /// The same logical PIFO was dequeued less than 3 cycles ago (§5.2).
    LpifoDequeueTooSoon(LogicalPifoId),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::RankStoreFull => write!(f, "rank store full"),
            HwError::FlowSchedulerFull => write!(f, "flow scheduler full"),
            HwError::FlowOutOfRange => write!(f, "flow id out of range"),
            HwError::LpifoOutOfRange(l) => write!(f, "logical PIFO {l} out of range"),
            HwError::BlockOutOfRange(b) => write!(f, "block {b} out of range"),
            HwError::EnqueuePortBusy(b) => write!(f, "enqueue port of {b} busy this cycle"),
            HwError::DequeuePortBusy(b) => write!(f, "dequeue port of {b} busy this cycle"),
            HwError::LpifoDequeueTooSoon(l) => {
                write!(f, "logical PIFO {l} dequeued less than 3 cycles ago")
            }
        }
    }
}

impl std::error::Error for HwError {}
