//! The PIFO mesh (§4.2–§4.3, Fig 9): a small set of PIFO blocks, fully
//! interconnected, executing a compiled scheduling tree.
//!
//! Each tree node's scheduling PIFO lives as a logical PIFO in some block;
//! nodes with shaping transactions additionally own a *shaping PIFO*
//! (possibly in another block, cf. Fig 11's dedicated `TBF_Right` block).
//! After every dequeue, a next-hop decision — transmit, dequeue a child
//! PIFO in another block, or enqueue a released reference into the parent
//! — is taken from the element's metadata, modelling the per-block lookup
//! tables of Fig 9.
//!
//! # Cycle discipline (§4.3)
//!
//! Every block offers one enqueue and one dequeue port per cycle.
//! Scheduling operations (packet enqueues, transmissions) claim ports
//! first; shaping releases are **best-effort**, served from leftover ports
//! at the end of each cycle, and *deferred* — never dropped — on conflict.
//! Over-clocking (§4.3's 1.25 GHz workaround) grants periodic bonus
//! credits usable only by best-effort work.

use crate::block::PifoBlock;
use crate::config::{BlockConfig, BlockId, LogicalPifoId};
use crate::error::HwError;
use crate::timing::PortGates;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// Where one tree node's PIFOs live in the mesh.
#[derive(Debug, Clone)]
pub struct NodePlacement {
    /// Node display name (e.g. `WFQ_Root`).
    pub name: String,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Block hosting this node's scheduling PIFO.
    pub block: BlockId,
    /// Logical PIFO id of the scheduling PIFO within that block.
    pub lpifo: LogicalPifoId,
    /// Placement of the shaping PIFO, when the node has a shaping
    /// transaction.
    pub shaping: Option<(BlockId, LogicalPifoId)>,
}

/// Counters exposed for the §4.3 conflict experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Packets accepted into the mesh.
    pub packets_enqueued: u64,
    /// Packets transmitted.
    pub packets_transmitted: u64,
    /// Shaped references released to their parents.
    pub shaping_releases: u64,
    /// Cycle-slots where a due shaped reference had to wait for ports.
    pub shaping_deferrals: u64,
}

// Metadata encoding for elements stored in blocks (the "32-bit metadata
// field" of §5.3, here modelled as a tagged u64).
const TAG_SHIFT: u32 = 62;
const TAG_PACKET: u64 = 0;
const TAG_REF: u64 = 1;
const TAG_SUSP: u64 = 2;

fn meta_packet(slot: u32) -> u64 {
    (TAG_PACKET << TAG_SHIFT) | slot as u64
}
fn meta_ref(node: usize) -> u64 {
    (TAG_REF << TAG_SHIFT) | node as u64
}
fn meta_susp(id: u32) -> u64 {
    (TAG_SUSP << TAG_SHIFT) | id as u64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Meta {
    Packet(u32),
    Ref(usize),
    Susp(u32),
}

fn decode(meta: u64) -> Meta {
    let val = meta & ((1u64 << TAG_SHIFT) - 1);
    match meta >> TAG_SHIFT {
        TAG_PACKET => Meta::Packet(val as u32),
        TAG_REF => Meta::Ref(val as usize),
        TAG_SUSP => Meta::Susp(val as u32),
        t => unreachable!("corrupt meta tag {t}"),
    }
}

/// A runnable PIFO mesh: blocks + placements + per-node transactions.
pub struct Mesh {
    blocks: Vec<PifoBlock>,
    gates: Vec<PortGates>,
    nodes: Vec<NodePlacement>,
    sched_tx: Vec<Box<dyn SchedulingTransaction>>,
    shape_tx: Vec<Option<Box<dyn ShapingTransaction>>>,
    classifier: Box<dyn Fn(&Packet) -> usize>,
    root: usize,
    packets: HashMap<u32, Packet>,
    next_slot: u32,
    suspensions: HashMap<u32, (usize, Packet)>,
    next_susp: u32,
    cycle: u64,
    cycle_ns: u64,
    /// Every `k` cycles, grant one best-effort bonus port credit per
    /// block (`None` = no over-clocking).
    overclock_every: Option<u64>,
    stats: MeshStats,
}

impl Mesh {
    /// Assemble a mesh.
    ///
    /// `nodes[i]` is placed per `placements[i]` and runs `sched_tx[i]`
    /// (plus `shape_tx[i]` if shaping). `classifier` maps packets to leaf
    /// node indices. `cycle_ns` is the clock period (1 ns at 1 GHz).
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid placements: unknown parents, a
    /// shaper on the root, duplicate (block, lpifo) assignments, or a
    /// parent sharing a block with its child (which could never meet the
    /// one-enqueue-per-cycle budget on the enqueue path, §4.2).
    pub fn new(
        block_cfgs: Vec<BlockConfig>,
        nodes: Vec<NodePlacement>,
        sched_tx: Vec<Box<dyn SchedulingTransaction>>,
        shape_tx: Vec<Option<Box<dyn ShapingTransaction>>>,
        classifier: Box<dyn Fn(&Packet) -> usize>,
        cycle_ns: u64,
    ) -> Self {
        assert_eq!(nodes.len(), sched_tx.len(), "one transaction per node");
        assert_eq!(nodes.len(), shape_tx.len(), "one shaper slot per node");
        assert!(!nodes.is_empty(), "mesh needs nodes");
        let mut root = None;
        let mut seen: HashMap<(BlockId, LogicalPifoId), &str> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            assert!(
                (n.block.0 as usize) < block_cfgs.len(),
                "node {} placed on missing {}",
                n.name,
                n.block
            );
            if let Some(dup) = seen.insert((n.block, n.lpifo), &n.name) {
                panic!(
                    "{}/{} assigned twice ({} and {})",
                    n.block, n.lpifo, dup, n.name
                );
            }
            if let Some((sb, sl)) = n.shaping {
                if let Some(dup) = seen.insert((sb, sl), &n.name) {
                    panic!("{sb}/{sl} assigned twice ({dup} and shaping of {})", n.name);
                }
            }
            match n.parent {
                None => {
                    assert!(root.is_none(), "two roots");
                    assert!(n.shaping.is_none(), "shaper on root");
                    root = Some(i);
                }
                Some(p) => {
                    assert!(p < nodes.len(), "unknown parent of {}", n.name);
                    assert_ne!(
                        nodes[p].block, n.block,
                        "parent {} and child {} share a block",
                        nodes[p].name, n.name
                    );
                }
            }
            if shape_tx[i].is_some() {
                assert!(
                    n.shaping.is_some(),
                    "node {} shaper lacks placement",
                    n.name
                );
            }
        }
        let gates = block_cfgs.iter().map(|_| PortGates::new()).collect();
        let blocks: Vec<PifoBlock> = block_cfgs.into_iter().map(PifoBlock::new).collect();
        let mut mesh = Mesh {
            blocks,
            gates,
            nodes,
            sched_tx,
            shape_tx,
            classifier,
            root: root.expect("a root"),
            packets: HashMap::new(),
            next_slot: 0,
            suspensions: HashMap::new(),
            next_susp: 0,
            cycle: 0,
            cycle_ns,
            overclock_every: None,
            stats: MeshStats::default(),
        };
        for g in mesh.gates.iter_mut() {
            g.new_cycle(0);
        }
        mesh
    }

    /// Enable over-clocking: one bonus best-effort port credit per block
    /// every `k` cycles (k=4 models 1.25 GHz over a 1 GHz datapath).
    pub fn with_overclock_every(mut self, k: u64) -> Self {
        assert!(k > 0, "overclock interval must be positive");
        self.overclock_every = Some(k);
        self
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current wall-clock time.
    pub fn now(&self) -> Nanos {
        Nanos(self.cycle * self.cycle_ns)
    }

    /// Counters for the conflict experiments.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Packets currently buffered.
    pub fn buffered(&self) -> usize {
        self.packets.len()
    }

    /// Advance to the next cycle. Shaping releases for the *current*
    /// cycle are attempted first, using leftover ports (scheduling ops
    /// already ran — conflicts resolve in scheduling's favour, §4.3).
    pub fn tick(&mut self) {
        self.process_shaping();
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        let bonus = match self.overclock_every {
            Some(k) if self.cycle % k == 0 => 1,
            _ => 0,
        };
        for g in self.gates.iter_mut() {
            g.new_cycle(bonus);
        }
    }

    /// Best-effort shaping pass with whatever ports remain this cycle.
    fn process_shaping(&mut self) {
        let now = self.now().as_nanos();
        // Deterministic order: node index.
        for i in 0..self.nodes.len() {
            let Some((sb, sl)) = self.nodes[i].shaping else {
                continue;
            };
            let Some((rank, _, meta)) = self.blocks[sb.0 as usize].peek(sl) else {
                continue;
            };
            if rank.value() > now {
                continue; // not due yet
            }
            let parent = self.nodes[i].parent.expect("shaper never on root");
            let pb = self.nodes[parent].block;
            // Claim dequeue on the shaping block and enqueue on the
            // parent block — both best-effort.
            let deq_ok = self.gates[sb.0 as usize]
                .claim_dequeue(sb, sl, self.cycle, true)
                .is_ok();
            if !deq_ok {
                self.stats.shaping_deferrals += 1;
                continue;
            }
            let enq_ok = self.gates[pb.0 as usize].claim_enqueue(pb, true).is_ok();
            if !enq_ok {
                // The dequeue-port claim is wasted this cycle; the
                // reference stays queued (it was only peeked).
                self.stats.shaping_deferrals += 1;
                continue;
            }
            let (_, _, meta2) = self.blocks[sb.0 as usize]
                .dequeue(sl)
                .expect("peeked head vanished");
            debug_assert_eq!(meta, meta2);
            let Meta::Susp(id) = decode(meta2) else {
                unreachable!("shaping PIFO holds only suspensions");
            };
            let (node, pkt) = self.suspensions.remove(&id).expect("live suspension");
            self.stats.shaping_releases += 1;
            self.continue_upward_unchecked(node, pkt);
        }
    }

    fn is_leaf(&self, node: usize) -> bool {
        !self.nodes.iter().any(|n| n.parent == Some(node))
    }

    /// Enqueue `pkt`, executing one transaction per level (§2.2). Claims
    /// one enqueue port per block on the path (guaranteed class). Returns
    /// `Err` if any port on the path is already used this cycle — the
    /// caller retries next cycle, as the ingress pipeline would.
    pub fn enqueue_packet(&mut self, pkt: Packet) -> Result<(), HwError> {
        let leaf = (self.classifier)(&pkt);
        assert!(leaf < self.nodes.len(), "classifier out of range");
        assert!(self.is_leaf(leaf), "classifier must return a leaf");

        // Phase 1: the static block path — each node up to and including
        // the first shaper, or the root.
        let mut path_blocks: Vec<BlockId> = Vec::new();
        let mut n = leaf;
        loop {
            path_blocks.push(self.nodes[n].block);
            if let Some((sb, _)) = self.nodes[n].shaping {
                path_blocks.push(sb);
                break;
            }
            match self.nodes[n].parent {
                Some(p) => n = p,
                None => break,
            }
        }
        // Phase 2: all-or-nothing port availability check, then claim.
        for b in &path_blocks {
            if !self.gates[b.0 as usize].enqueue_would_succeed() {
                return Err(HwError::EnqueuePortBusy(*b));
            }
        }
        for b in &path_blocks {
            self.gates[b.0 as usize]
                .claim_enqueue(*b, false)
                .expect("checked available");
        }

        // Phase 3: execute.
        let slot = self.next_slot;
        self.next_slot = self.next_slot.wrapping_add(1);
        let flow = pkt.flow;
        let ctx = EnqCtx {
            packet: &pkt,
            now: self.now(),
            flow,
        };
        let rank = self.sched_tx[leaf].rank(&ctx);
        let place = &self.nodes[leaf];
        self.blocks[place.block.0 as usize].enqueue(place.lpifo, flow, rank, meta_packet(slot))?;
        self.packets.insert(slot, pkt.clone());
        self.stats.packets_enqueued += 1;

        self.after_insert(leaf, pkt);
        Ok(())
    }

    /// After an element entered `node`'s scheduling PIFO: suspend at its
    /// shaper or continue to the parent. Ports were pre-claimed by
    /// `enqueue_packet`; shaping resumptions claim their own.
    fn after_insert(&mut self, node: usize, pkt: Packet) {
        if self.shape_tx[node].is_some() {
            let (sb, sl) = self.nodes[node].shaping.expect("validated");
            let ctx = EnqCtx {
                packet: &pkt,
                now: self.now(),
                flow: FlowId(node as u32),
            };
            let t = self.shape_tx[node]
                .as_mut()
                .expect("checked")
                .send_time(&ctx);
            let id = self.next_susp;
            self.next_susp = self.next_susp.wrapping_add(1);
            self.suspensions.insert(id, (node, pkt));
            self.blocks[sb.0 as usize]
                .enqueue(sl, FlowId(node as u32), Rank(t.as_nanos()), meta_susp(id))
                .expect("shaping PIFO capacity");
            return;
        }
        let Some(parent) = self.nodes[node].parent else {
            return;
        };
        let ctx = EnqCtx {
            packet: &pkt,
            now: self.now(),
            flow: FlowId(node as u32),
        };
        let rank = self.sched_tx[parent].rank(&ctx);
        let place = &self.nodes[parent];
        self.blocks[place.block.0 as usize]
            .enqueue(place.lpifo, FlowId(node as u32), rank, meta_ref(node))
            .expect("interior PIFO capacity");
        self.after_insert(parent, pkt);
    }

    /// Resume a released suspension at the parent (ports already claimed
    /// by the shaping pass for this hop; further hops claim best-effort
    /// ports inline).
    fn continue_upward_unchecked(&mut self, node: usize, pkt: Packet) {
        let parent = self.nodes[node].parent.expect("shaper never on root");
        let ctx = EnqCtx {
            packet: &pkt,
            now: self.now(),
            flow: FlowId(node as u32),
        };
        let rank = self.sched_tx[parent].rank(&ctx);
        let place = &self.nodes[parent];
        self.blocks[place.block.0 as usize]
            .enqueue(place.lpifo, FlowId(node as u32), rank, meta_ref(node))
            .expect("interior PIFO capacity");
        self.after_insert(parent, pkt);
    }

    /// Transmit one packet: the root-to-leaf dequeue chain of Fig 2,
    /// following the next-hop lookup at every block (§4.2). Claims one
    /// dequeue port per block on the chain (guaranteed class).
    ///
    /// Returns `Ok(None)` when the root PIFO is empty (with shaping this
    /// can happen while packets are buffered).
    pub fn transmit(&mut self) -> Result<Option<Packet>, HwError> {
        let mut node = self.root;
        loop {
            let place = &self.nodes[node];
            let (block, lpifo) = (place.block, place.lpifo);
            if self.blocks[block.0 as usize].peek(lpifo).is_none() {
                return if node == self.root {
                    Ok(None)
                } else {
                    unreachable!("reference to empty child {}", self.nodes[node].name)
                };
            }
            self.gates[block.0 as usize].claim_dequeue(block, lpifo, self.cycle, false)?;
            let (rank, flow, meta) = self.blocks[block.0 as usize]
                .dequeue(lpifo)
                .expect("peeked non-empty");
            let now = self.now();
            self.sched_tx[node].on_dequeue(rank, &DeqCtx { now, flow });
            match decode(meta) {
                Meta::Packet(slot) => {
                    let pkt = self.packets.remove(&slot).expect("live packet");
                    self.stats.packets_transmitted += 1;
                    return Ok(Some(pkt));
                }
                Meta::Ref(child) => node = child,
                Meta::Susp(_) => unreachable!("suspension in a scheduling PIFO"),
            }
        }
    }

    /// Occupancy of a node's scheduling PIFO (introspection for tests).
    pub fn node_len(&self, node: usize) -> usize {
        let p = &self.nodes[node];
        self.blocks[p.block.0 as usize].len(p.lpifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FifoTx;
    impl SchedulingTransaction for FifoTx {
        fn rank(&mut self, ctx: &EnqCtx<'_>) -> Rank {
            Rank(ctx.now.as_nanos())
        }
    }

    struct DelayShaper(u64);
    impl ShapingTransaction for DelayShaper {
        fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
            Nanos(ctx.now.as_nanos() + self.0)
        }
    }

    /// Root (block 0) over two leaves: leaf 1 (block 1) optionally shaped
    /// via a dedicated shaping block (block 2, cf. Fig 11), leaf 2
    /// (block 3) unshaped. Flow 0 -> shaped leaf, other flows -> leaf 2.
    fn two_level_mesh(shaped: bool) -> Mesh {
        let nodes = vec![
            NodePlacement {
                name: "root".into(),
                parent: None,
                block: BlockId(0),
                lpifo: LogicalPifoId(0),
                shaping: None,
            },
            NodePlacement {
                name: "leaf".into(),
                parent: Some(0),
                block: BlockId(1),
                lpifo: LogicalPifoId(0),
                shaping: if shaped {
                    Some((BlockId(2), LogicalPifoId(0)))
                } else {
                    None
                },
            },
            NodePlacement {
                name: "leaf2".into(),
                parent: Some(0),
                block: BlockId(3),
                lpifo: LogicalPifoId(0),
                shaping: None,
            },
        ];
        let sched: Vec<Box<dyn SchedulingTransaction>> =
            vec![Box::new(FifoTx), Box::new(FifoTx), Box::new(FifoTx)];
        let shape: Vec<Option<Box<dyn ShapingTransaction>>> = vec![
            None,
            if shaped {
                Some(Box::new(DelayShaper(10)))
            } else {
                None
            },
            None,
        ];
        Mesh::new(
            (0..4).map(|_| BlockConfig::tiny()).collect(),
            nodes,
            sched,
            shape,
            Box::new(|p: &Packet| if p.flow.0 == 0 { 1usize } else { 2usize }),
            1,
        )
    }

    fn pkt(id: u64, flow: u32) -> Packet {
        Packet::new(id, FlowId(flow), 100, Nanos::ZERO)
    }

    #[test]
    fn enqueue_then_transmit_round_trip() {
        let mut m = two_level_mesh(false);
        m.enqueue_packet(pkt(1, 0)).unwrap();
        assert_eq!(m.buffered(), 1);
        m.tick();
        let p = m.transmit().unwrap().unwrap();
        assert_eq!(p.id.0, 1);
        assert_eq!(m.buffered(), 0);
        assert!(m.transmit().unwrap().is_none());
    }

    #[test]
    fn one_enqueue_per_block_per_cycle() {
        let mut m = two_level_mesh(false);
        m.enqueue_packet(pkt(1, 0)).unwrap();
        // Second packet in the same cycle needs the same leaf/root blocks.
        assert!(matches!(
            m.enqueue_packet(pkt(2, 1)),
            Err(HwError::EnqueuePortBusy(_))
        ));
        m.tick();
        m.enqueue_packet(pkt(2, 1)).unwrap();
        assert_eq!(m.buffered(), 2);
    }

    #[test]
    fn same_lpifo_transmit_needs_3_cycles() {
        let mut m = two_level_mesh(false);
        for i in 0..2 {
            m.enqueue_packet(pkt(i, i as u32)).unwrap();
            m.tick();
        }
        assert!(m.transmit().unwrap().is_some());
        m.tick();
        assert!(matches!(m.transmit(), Err(HwError::LpifoDequeueTooSoon(_))));
        m.tick();
        m.tick();
        assert!(m.transmit().unwrap().is_some());
    }

    #[test]
    fn shaped_packet_invisible_until_release() {
        let mut m = two_level_mesh(true);
        m.enqueue_packet(pkt(1, 0)).unwrap();
        assert_eq!(m.node_len(0), 0, "root sees nothing yet");
        assert_eq!(m.node_len(1), 1, "leaf holds the packet");
        // Before release time (t=10): no transmission possible.
        for _ in 0..5 {
            m.tick();
            assert!(m.transmit().unwrap().is_none());
        }
        // Reach t >= 10; release happens in tick's shaping pass.
        for _ in 0..7 {
            m.tick();
        }
        assert_eq!(m.stats().shaping_releases, 1);
        assert_eq!(m.node_len(0), 1, "root sees the released reference");
        let p = m.transmit().unwrap().unwrap();
        assert_eq!(p.id.0, 1);
    }

    #[test]
    fn shaping_deferred_when_ports_busy() {
        let mut m = two_level_mesh(true);
        m.enqueue_packet(pkt(1, 0)).unwrap();
        // Advance past the release time without spending ports...
        for _ in 0..12 {
            m.tick();
        }
        assert_eq!(m.stats().shaping_releases, 1);

        // Second shaped packet; this time keep the root block's enqueue
        // port busy every cycle with competing traffic through the
        // unshaped leaf, deferring the release.
        m.enqueue_packet(pkt(2, 0)).unwrap();
        let deferrals_before = m.stats().shaping_deferrals;
        for i in 0..12 {
            m.tick();
            // A fresh packet each cycle claims leaf2+root enqueue ports
            // (root's port is what the shaping release needs).
            let _ = m.enqueue_packet(pkt(100 + i, 1));
        }
        assert!(
            m.stats().shaping_deferrals > deferrals_before,
            "conflicts must defer shaping: {:?}",
            m.stats()
        );
    }

    #[test]
    #[should_panic(expected = "share a block")]
    fn parent_child_same_block_rejected() {
        let nodes = vec![
            NodePlacement {
                name: "root".into(),
                parent: None,
                block: BlockId(0),
                lpifo: LogicalPifoId(0),
                shaping: None,
            },
            NodePlacement {
                name: "leaf".into(),
                parent: Some(0),
                block: BlockId(0),
                lpifo: LogicalPifoId(1),
                shaping: None,
            },
        ];
        let _ = Mesh::new(
            vec![BlockConfig::tiny()],
            nodes,
            vec![Box::new(FifoTx), Box::new(FifoTx)],
            vec![None, None],
            Box::new(|_| 1usize),
            1,
        );
    }

    #[test]
    fn overclock_rescues_deferred_shaping() {
        // Saturate the root's enqueue port every cycle; without
        // overclock the shaped release starves, with it the bonus credit
        // lets it through.
        let run = |overclock: Option<u64>| -> u64 {
            let mut m = two_level_mesh(true);
            if let Some(k) = overclock {
                m = m.with_overclock_every(k);
            }
            m.enqueue_packet(pkt(1, 0)).unwrap();
            for i in 0..40 {
                m.tick();
                let _ = m.enqueue_packet(pkt(100 + i, 1));
            }
            m.stats().shaping_releases
        };
        assert_eq!(run(None), 0, "fully starved without overclock");
        assert_eq!(run(Some(4)), 1, "bonus credit releases the reference");
    }
}
