//! Cycle-level timing models.
//!
//! Two pieces:
//!
//! * [`PipelinedFlowScheduler`] — the 2-stage pipeline of Fig 13:
//!   (parallel compare + priority encode) then (shift). Sustains 2 pushes
//!   + 1 pop per cycle with a 2-cycle latency; checked by construction.
//! * [`PortGates`] — per-cycle port accounting for a block in a mesh:
//!   one enqueue + one dequeue per block per cycle (§4.2), the 3-cycle
//!   same-logical-PIFO dequeue spacing (§5.2), and optional over-clock
//!   credits that give *best-effort* (shaping) operations spare slots
//!   (§4.3's 1.25 GHz workaround).

use crate::config::{LogicalPifoId, DEQ_SAME_LPIFO_INTERVAL, POPS_PER_CYCLE, PUSHES_PER_CYCLE};
use crate::error::HwError;
use crate::flow_scheduler::{FlowEntry, FlowScheduler};
use std::collections::HashMap;

/// The Fig 13 pipeline wrapped around a [`FlowScheduler`].
///
/// Operations are submitted against an explicit cycle counter; the model
/// enforces the per-cycle issue limits and reports each operation's
/// completion cycle (submission + 2). State mutation is applied at
/// submission — results are what a 2-stage pipeline would observe.
#[derive(Debug)]
pub struct PipelinedFlowScheduler {
    inner: FlowScheduler,
    cycle: u64,
    pushes_this_cycle: u32,
    pops_this_cycle: u32,
    /// Completed operation count (for throughput assertions).
    pub ops_completed: u64,
}

impl PipelinedFlowScheduler {
    /// Wrap a flow scheduler of the given capacity.
    pub fn new(capacity: usize) -> Self {
        PipelinedFlowScheduler {
            inner: FlowScheduler::new(capacity),
            cycle: 0,
            pushes_this_cycle: 0,
            pops_this_cycle: 0,
            ops_completed: 0,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance one clock edge.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.pushes_this_cycle = 0;
        self.pops_this_cycle = 0;
    }

    /// Submit a push this cycle. Returns the completion cycle.
    pub fn push(&mut self, e: FlowEntry) -> Result<u64, HwError> {
        if self.pushes_this_cycle >= PUSHES_PER_CYCLE {
            return Err(HwError::EnqueuePortBusy(crate::config::BlockId(0)));
        }
        self.inner.push(e)?;
        self.pushes_this_cycle += 1;
        self.ops_completed += 1;
        Ok(self.cycle + 2)
    }

    /// Submit a pop this cycle. Returns `(entry, completion_cycle)`.
    pub fn pop(&mut self, lpifo: LogicalPifoId) -> Result<(Option<FlowEntry>, u64), HwError> {
        if self.pops_this_cycle >= POPS_PER_CYCLE {
            return Err(HwError::DequeuePortBusy(crate::config::BlockId(0)));
        }
        let e = self.inner.pop(lpifo);
        self.pops_this_cycle += 1;
        self.ops_completed += 1;
        Ok((e, self.cycle + 2))
    }

    /// The wrapped scheduler (introspection).
    pub fn inner(&self) -> &FlowScheduler {
        &self.inner
    }
}

/// Per-cycle port accounting for one block inside a mesh.
#[derive(Debug)]
pub struct PortGates {
    enq_used: u32,
    deq_used: u32,
    /// Extra best-effort credits this cycle (over-clocking, §4.3).
    bonus_enq: u32,
    bonus_deq: u32,
    last_lpifo_deq: HashMap<LogicalPifoId, u64>,
}

impl Default for PortGates {
    fn default() -> Self {
        Self::new()
    }
}

impl PortGates {
    /// Fresh gates (cycle 0).
    pub fn new() -> Self {
        PortGates {
            enq_used: 0,
            deq_used: 0,
            bonus_enq: 0,
            bonus_deq: 0,
            last_lpifo_deq: HashMap::new(),
        }
    }

    /// Start a new cycle, granting `bonus` extra best-effort ports (0 at
    /// 1.0× clock; 1 every 4th cycle at 1.25×).
    pub fn new_cycle(&mut self, bonus: u32) {
        self.enq_used = 0;
        self.deq_used = 0;
        self.bonus_enq = bonus;
        self.bonus_deq = bonus;
    }

    /// Whether a guaranteed enqueue claim would currently succeed
    /// (all-or-nothing path checks in the mesh use this before claiming).
    pub fn enqueue_would_succeed(&self) -> bool {
        self.enq_used < 1
    }

    /// Claim the enqueue port. `best_effort` ops may use bonus credits
    /// but never displace a guaranteed op.
    pub fn claim_enqueue(
        &mut self,
        block: crate::config::BlockId,
        best_effort: bool,
    ) -> Result<(), HwError> {
        if self.enq_used < 1 {
            self.enq_used += 1;
            return Ok(());
        }
        if best_effort && self.bonus_enq > 0 {
            self.bonus_enq -= 1;
            return Ok(());
        }
        Err(HwError::EnqueuePortBusy(block))
    }

    /// Claim the dequeue port, enforcing the 3-cycle same-lpifo rule.
    pub fn claim_dequeue(
        &mut self,
        block: crate::config::BlockId,
        lpifo: LogicalPifoId,
        cycle: u64,
        best_effort: bool,
    ) -> Result<(), HwError> {
        if let Some(&last) = self.last_lpifo_deq.get(&lpifo) {
            if cycle.saturating_sub(last) < DEQ_SAME_LPIFO_INTERVAL {
                return Err(HwError::LpifoDequeueTooSoon(lpifo));
            }
        }
        if self.deq_used < 1 {
            self.deq_used += 1;
        } else if best_effort && self.bonus_deq > 0 {
            self.bonus_deq -= 1;
        } else {
            return Err(HwError::DequeuePortBusy(block));
        }
        self.last_lpifo_deq.insert(lpifo, cycle);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockId;
    use pifo_core::prelude::*;

    fn entry(rank: u64, lpifo: u16, flow: u32) -> FlowEntry {
        FlowEntry {
            rank: Rank(rank),
            lpifo: LogicalPifoId(lpifo),
            flow: FlowId(flow),
            meta: 0,
        }
    }

    #[test]
    fn pipeline_sustains_2_push_1_pop_per_cycle() {
        let mut p = PipelinedFlowScheduler::new(64);
        // Warm up with entries so pops succeed.
        p.push(entry(1, 0, 1)).unwrap();
        p.push(entry(2, 0, 2)).unwrap();
        p.tick();
        for c in 1..=10u64 {
            assert!(p.push(entry(100 + c, 0, (10 + c) as u32)).is_ok());
            assert!(p.push(entry(200 + c, 0, (30 + c) as u32)).is_ok());
            assert!(p.pop(LogicalPifoId(0)).is_ok());
            p.tick();
        }
        // 2 warmup + 10*(2+1) = 32 ops.
        assert_eq!(p.ops_completed, 32);
    }

    #[test]
    fn pipeline_rejects_third_push_in_cycle() {
        let mut p = PipelinedFlowScheduler::new(64);
        p.push(entry(1, 0, 1)).unwrap();
        p.push(entry(2, 0, 2)).unwrap();
        assert!(matches!(
            p.push(entry(3, 0, 3)),
            Err(HwError::EnqueuePortBusy(_))
        ));
        p.tick();
        assert!(p.push(entry(3, 0, 3)).is_ok(), "next cycle is fine");
    }

    #[test]
    fn pipeline_rejects_second_pop_in_cycle() {
        let mut p = PipelinedFlowScheduler::new(64);
        p.push(entry(1, 0, 1)).unwrap();
        p.push(entry(2, 0, 2)).unwrap();
        p.tick();
        assert!(p.pop(LogicalPifoId(0)).is_ok());
        assert!(matches!(
            p.pop(LogicalPifoId(0)),
            Err(HwError::DequeuePortBusy(_))
        ));
    }

    #[test]
    fn pipeline_latency_is_two_cycles() {
        let mut p = PipelinedFlowScheduler::new(8);
        p.tick();
        p.tick(); // cycle 2
        let done = p.push(entry(1, 0, 1)).unwrap();
        assert_eq!(done, 4);
    }

    #[test]
    fn gates_one_enq_one_deq_per_cycle() {
        let mut g = PortGates::new();
        g.new_cycle(0);
        assert!(g.claim_enqueue(BlockId(0), false).is_ok());
        assert!(g.claim_enqueue(BlockId(0), false).is_err());
        assert!(g
            .claim_dequeue(BlockId(0), LogicalPifoId(0), 0, false)
            .is_ok());
        assert!(g
            .claim_dequeue(BlockId(0), LogicalPifoId(1), 0, false)
            .is_err());
    }

    #[test]
    fn gates_same_lpifo_needs_3_cycles() {
        let mut g = PortGates::new();
        g.new_cycle(0);
        g.claim_dequeue(BlockId(0), LogicalPifoId(5), 0, false)
            .unwrap();
        g.new_cycle(0);
        assert!(matches!(
            g.claim_dequeue(BlockId(0), LogicalPifoId(5), 1, false),
            Err(HwError::LpifoDequeueTooSoon(_))
        ));
        // A *different* lpifo is fine next cycle.
        assert!(g
            .claim_dequeue(BlockId(0), LogicalPifoId(6), 1, false)
            .is_ok());
        g.new_cycle(0);
        g.new_cycle(0);
        assert!(g
            .claim_dequeue(BlockId(0), LogicalPifoId(5), 3, false)
            .is_ok());
    }

    #[test]
    fn overclock_bonus_serves_best_effort_only() {
        let mut g = PortGates::new();
        g.new_cycle(1); // one bonus credit (1.25x cycle)
        g.claim_enqueue(BlockId(0), false).unwrap();
        // A second *guaranteed* op still fails…
        assert!(g.claim_enqueue(BlockId(0), false).is_err());
        // …but a best-effort (shaping) op rides the bonus.
        assert!(g.claim_enqueue(BlockId(0), true).is_ok());
        assert!(g.claim_enqueue(BlockId(0), true).is_err(), "credit spent");
    }
}
