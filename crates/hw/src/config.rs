//! Hardware configuration parameters (§5.1, §5.3).
//!
//! Defaults mirror the paper's baseline PIFO block: 1024 flows shared
//! across 256 logical PIFOs, 16-bit ranks, 32-bit metadata, and a 64 K
//! element rank store — sized for a Broadcom-Trident-class shared-memory
//! switch (64 × 10 Gb/s ports, 12 MB buffer, 200 B cells ⇒ 60 K cells).

/// Identifies a PIFO block within a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u8);

/// Identifies a logical PIFO within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalPifoId(pub u16);

impl core::fmt::Display for BlockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl core::fmt::Display for LogicalPifoId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Sizing of one PIFO block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockConfig {
    /// Flow-scheduler capacity: number of flows sorted in flip-flops.
    pub n_flows: usize,
    /// Number of logical PIFOs sharing the block.
    pub n_logical_pifos: usize,
    /// Rank field width in bits (§5.3 baseline: 16).
    pub rank_bits: u32,
    /// Metadata field width in bits (§5.3 baseline: 32).
    pub meta_bits: u32,
    /// Rank-store capacity in elements (§5.3 baseline: 64 K).
    pub rank_store_capacity: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            n_flows: 1024,
            n_logical_pifos: 256,
            rank_bits: 16,
            meta_bits: 32,
            rank_store_capacity: 64 * 1024,
        }
    }
}

impl BlockConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        BlockConfig {
            n_flows: 8,
            n_logical_pifos: 4,
            rank_bits: 16,
            meta_bits: 32,
            rank_store_capacity: 64,
        }
    }

    /// Bits to address a flow (§5.4 uses 10 bits for 1024 flows).
    pub fn flow_id_bits(&self) -> u32 {
        (self.n_flows as u64).next_power_of_two().trailing_zeros()
    }

    /// Bits to address a logical PIFO (§5.4 uses 8 bits for 256).
    pub fn lpifo_id_bits(&self) -> u32 {
        (self.n_logical_pifos as u64)
            .next_power_of_two()
            .trailing_zeros()
    }
}

/// Per-cycle performance envelope of a block (§5.2): the flow scheduler
/// sustains 2 pushes + 1 pop per clock; a block exposes 1 enqueue + 1
/// dequeue per clock; the same logical PIFO can be dequeued at most once
/// every [`DEQ_SAME_LPIFO_INTERVAL`] cycles.
pub const PUSHES_PER_CYCLE: u32 = 2;
/// Pops per cycle the flow scheduler sustains.
pub const POPS_PER_CYCLE: u32 = 1;
/// Minimum cycle gap between dequeues of one logical PIFO (2-cycle pop +
/// 1-cycle SRAM access for the reinsert; §5.2).
pub const DEQ_SAME_LPIFO_INTERVAL: u64 = 3;
/// Cycles between dequeues needed to sustain 100 Gb/s at 64 B packets
/// (§5.2: "at most once every 5 clock cycles").
pub const DEQ_INTERVAL_100G: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_trident_baseline() {
        let c = BlockConfig::default();
        assert_eq!(c.n_flows, 1024);
        assert_eq!(c.n_logical_pifos, 256);
        assert_eq!(c.rank_bits, 16);
        assert_eq!(c.meta_bits, 32);
        assert_eq!(c.rank_store_capacity, 65_536);
    }

    #[test]
    fn address_widths_match_section_5_4() {
        let c = BlockConfig::default();
        assert_eq!(c.flow_id_bits(), 10);
        assert_eq!(c.lpifo_id_bits(), 8);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point is the constant relation itself
    fn lpifo_deq_interval_supports_100g() {
        // The 3-cycle restriction is looser than the 5-cycle requirement.
        assert!(DEQ_SAME_LPIFO_INTERVAL <= DEQ_INTERVAL_100G);
    }
}
