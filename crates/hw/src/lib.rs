//! # pifo-hw
//!
//! The cycle-level hardware model of §4–§5: the flow-scheduler +
//! rank-store decomposition of a PIFO block (Fig 12), the 2-stage
//! pipeline (Fig 13), per-cycle port budgets, and the full PIFO mesh with
//! next-hop chaining, scheduling-over-shaping conflict resolution, and
//! over-clocking (§4.2–§4.3).
//!
//! The model's contract: under the documented precondition — per-flow
//! ranks monotonically non-decreasing — a [`block::PifoBlock`] dequeues
//! exactly like the reference `SortedArrayPifo` of `pifo-core` (checked
//! by property tests), while sorting only per-flow heads.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod block;
pub mod config;
pub mod error;
pub mod flow_scheduler;
pub mod mesh;
pub mod rank_store;
pub mod timing;

pub use block::PifoBlock;
pub use config::{BlockConfig, BlockId, LogicalPifoId};
pub use error::HwError;
pub use flow_scheduler::{FlowEntry, FlowScheduler};
pub use mesh::{Mesh, MeshStats, NodePlacement};
pub use rank_store::{RankStore, StoredElement};
pub use timing::{PipelinedFlowScheduler, PortGates};
