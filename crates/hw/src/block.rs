//! A single PIFO block (§5.2, Fig 12): flow scheduler + rank store.
//!
//! The decomposition rests on one structural property of practical
//! algorithms: **ranks within a flow increase monotonically**, so packets
//! of one flow leave in FIFO order. Only per-flow *head* elements need
//! sorting (flow scheduler, ≤ ~1 K entries); everything behind a head
//! waits, unsorted, in a FIFO bank (rank store, 64 K cells). This cuts the
//! sorting problem from 60 K packets to 1 K flows.
//!
//! Enqueue: if the flow has no head in the flow scheduler, the element
//! *bypasses* the rank store and becomes the head (footnote 6); otherwise
//! it is appended to the flow's rank-store FIFO. Dequeue: pop the
//! head-most entry of the logical PIFO; if the flow is still backlogged,
//! *reinsert* its next element from the rank store (the "reinsert
//! pathway" of Fig 12).
//!
//! [`PifoBlock::strict_monotonic`] turns the documented precondition into
//! a checked invariant, so tests can both rely on it and demonstrate what
//! breaks without it.

use crate::config::{BlockConfig, LogicalPifoId};
use crate::error::HwError;
use crate::flow_scheduler::{FlowEntry, FlowScheduler};
use crate::rank_store::RankStore;
use pifo_core::prelude::*;
use std::collections::HashMap;

/// A functional (un-timed) PIFO block. Cycle-level port constraints are
/// layered on by [`crate::timing`] and [`crate::mesh`].
#[derive(Debug)]
pub struct PifoBlock {
    cfg: BlockConfig,
    scheduler: FlowScheduler,
    store: RankStore,
    /// Occupancy per logical PIFO (scheduler + store elements).
    lens: HashMap<LogicalPifoId, usize>,
    /// Last pushed rank per (lpifo, flow), for the monotonicity check.
    last_rank: HashMap<(LogicalPifoId, FlowId), Rank>,
    strict: bool,
}

impl PifoBlock {
    /// A block with the given configuration.
    pub fn new(cfg: BlockConfig) -> Self {
        PifoBlock {
            scheduler: FlowScheduler::new(cfg.n_flows),
            store: RankStore::new(cfg.rank_store_capacity),
            lens: HashMap::new(),
            last_rank: HashMap::new(),
            strict: false,
            cfg,
        }
    }

    /// Panic if a push violates per-flow rank monotonicity — the
    /// precondition §5.2's decomposition relies on. Off by default (the
    /// hardware would not notice either; it would just mis-sort).
    pub fn strict_monotonic(mut self, on: bool) -> Self {
        self.strict = on;
        self
    }

    /// The block's configuration.
    pub fn config(&self) -> &BlockConfig {
        &self.cfg
    }

    /// Elements buffered in `lpifo` (head + rank store).
    pub fn len(&self, lpifo: LogicalPifoId) -> usize {
        self.lens.get(&lpifo).copied().unwrap_or(0)
    }

    /// Total elements buffered in the block.
    pub fn total_len(&self) -> usize {
        self.lens.values().sum()
    }

    /// True when `lpifo` holds nothing.
    pub fn is_empty(&self, lpifo: LogicalPifoId) -> bool {
        self.len(lpifo) == 0
    }

    fn validate(&self, lpifo: LogicalPifoId, flow: FlowId) -> Result<(), HwError> {
        if lpifo.0 as usize >= self.cfg.n_logical_pifos {
            return Err(HwError::LpifoOutOfRange(lpifo));
        }
        if flow.0 as usize >= self.cfg.n_flows {
            return Err(HwError::FlowOutOfRange);
        }
        Ok(())
    }

    /// Enqueue an element (§4.2 block interface: logical PIFO id, rank,
    /// metadata, flow id).
    pub fn enqueue(
        &mut self,
        lpifo: LogicalPifoId,
        flow: FlowId,
        rank: Rank,
        meta: u64,
    ) -> Result<(), HwError> {
        self.validate(lpifo, flow)?;
        if self.strict {
            if let Some(&prev) = self.last_rank.get(&(lpifo, flow)) {
                assert!(
                    rank >= prev,
                    "rank monotonicity violated on {lpifo}/{flow}: {rank} < {prev}"
                );
            }
        }

        if self.scheduler.contains(lpifo, flow) {
            // Flow already has a head: append behind it.
            self.store.push_back(lpifo, flow, rank, meta)?;
        } else {
            // First element of the flow: bypass the rank store.
            self.scheduler.push(FlowEntry {
                rank,
                lpifo,
                flow,
                meta,
            })?;
        }
        self.last_rank.insert((lpifo, flow), rank);
        *self.lens.entry(lpifo).or_insert(0) += 1;
        Ok(())
    }

    /// Dequeue the head of `lpifo`: `(rank, flow, meta)`.
    pub fn dequeue(&mut self, lpifo: LogicalPifoId) -> Option<(Rank, FlowId, u64)> {
        let head = self.scheduler.pop(lpifo)?;
        *self.lens.get_mut(&lpifo).expect("len tracked") -= 1;

        // Reinsert pathway: if the flow is still backlogged, its next
        // element becomes the new head.
        if let Some(next) = self.store.pop_front(lpifo, head.flow) {
            self.scheduler
                .push(FlowEntry {
                    rank: next.rank,
                    lpifo,
                    flow: head.flow,
                    meta: next.meta,
                })
                .expect("reinsert cannot overflow: a slot was just freed");
        } else {
            self.last_rank.remove(&(lpifo, head.flow));
        }
        Some((head.rank, head.flow, head.meta))
    }

    /// Peek `lpifo`'s head without removing it.
    pub fn peek(&self, lpifo: LogicalPifoId) -> Option<(Rank, FlowId, u64)> {
        self.scheduler.peek(lpifo).map(|e| (e.rank, e.flow, e.meta))
    }

    /// PFC pause (§6.2).
    pub fn pause_flow(&mut self, flow: FlowId) {
        self.scheduler.pause(flow);
    }

    /// PFC resume (§6.2).
    pub fn resume_flow(&mut self, flow: FlowId) {
        self.scheduler.resume(flow);
    }

    /// Occupancy of the flow scheduler (active flow count).
    pub fn active_flows(&self) -> usize {
        self.scheduler.len()
    }

    /// Occupancy of the rank store.
    pub fn stored_elements(&self) -> usize {
        self.store.occupied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LogicalPifoId {
        LogicalPifoId(x)
    }
    fn f(x: u32) -> FlowId {
        FlowId(x)
    }

    fn block() -> PifoBlock {
        PifoBlock::new(BlockConfig::tiny()).strict_monotonic(true)
    }

    #[test]
    fn single_flow_is_fifo() {
        let mut b = block();
        for i in 0..5u64 {
            b.enqueue(l(0), f(1), Rank(i * 10), i).unwrap();
        }
        assert_eq!(b.len(l(0)), 5);
        assert_eq!(b.active_flows(), 1, "only the head is in the scheduler");
        assert_eq!(b.stored_elements(), 4);
        for i in 0..5u64 {
            let (r, flow, meta) = b.dequeue(l(0)).unwrap();
            assert_eq!((r, flow, meta), (Rank(i * 10), f(1), i));
        }
        assert!(b.dequeue(l(0)).is_none());
    }

    #[test]
    fn interleaves_flows_by_rank() {
        let mut b = block();
        // Flow 1 ranks: 10, 30; flow 2 ranks: 20, 40.
        b.enqueue(l(0), f(1), Rank(10), 0).unwrap();
        b.enqueue(l(0), f(1), Rank(30), 1).unwrap();
        b.enqueue(l(0), f(2), Rank(20), 2).unwrap();
        b.enqueue(l(0), f(2), Rank(40), 3).unwrap();
        let order: Vec<u64> =
            std::iter::from_fn(|| b.dequeue(l(0)).map(|(r, _, _)| r.value())).collect();
        assert_eq!(order, vec![10, 20, 30, 40]);
    }

    #[test]
    fn reinsert_pathway_exposes_next_head() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(10), 0).unwrap();
        b.enqueue(l(0), f(1), Rank(15), 1).unwrap();
        b.enqueue(l(0), f(2), Rank(12), 2).unwrap();
        assert_eq!(b.dequeue(l(0)).unwrap().0, Rank(10));
        // Flow 1's rank-15 element must now compete (and lose) against
        // flow 2's rank-12 head.
        assert_eq!(b.dequeue(l(0)).unwrap().0, Rank(12));
        assert_eq!(b.dequeue(l(0)).unwrap().0, Rank(15));
    }

    #[test]
    fn logical_pifos_are_isolated() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(5), 0).unwrap();
        b.enqueue(l(1), f(1), Rank(1), 1).unwrap();
        // Note: same flow id in two lpifos — allowed, independent FIFOs.
        assert_eq!(b.dequeue(l(0)).unwrap().0, Rank(5));
        assert_eq!(b.dequeue(l(1)).unwrap().0, Rank(1));
    }

    #[test]
    fn validates_ranges() {
        let mut b = block();
        assert_eq!(
            b.enqueue(l(99), f(0), Rank(0), 0),
            Err(HwError::LpifoOutOfRange(l(99)))
        );
        assert_eq!(
            b.enqueue(l(0), f(9_999), Rank(0), 0),
            Err(HwError::FlowOutOfRange)
        );
    }

    #[test]
    fn rank_store_full_surfaces() {
        let mut b = PifoBlock::new(BlockConfig {
            rank_store_capacity: 2,
            ..BlockConfig::tiny()
        });
        b.enqueue(l(0), f(1), Rank(1), 0).unwrap(); // head (bypass)
        b.enqueue(l(0), f(1), Rank(2), 1).unwrap(); // store[0]
        b.enqueue(l(0), f(1), Rank(3), 2).unwrap(); // store[1]
        assert_eq!(
            b.enqueue(l(0), f(1), Rank(4), 3),
            Err(HwError::RankStoreFull)
        );
    }

    #[test]
    #[should_panic(expected = "rank monotonicity violated")]
    fn strict_mode_catches_decreasing_ranks() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(10), 0).unwrap();
        b.enqueue(l(0), f(1), Rank(5), 1).unwrap();
    }

    #[test]
    fn non_strict_mode_missorts_on_violation() {
        // Document what the hardware would actually do if the precondition
        // is broken: the rank-5 element is stuck behind the rank-10 head
        // in the rank store, so it leaves late — unlike a true PIFO.
        let mut b = PifoBlock::new(BlockConfig::tiny());
        b.enqueue(l(0), f(1), Rank(10), 0).unwrap();
        b.enqueue(l(0), f(1), Rank(5), 1).unwrap();
        b.enqueue(l(0), f(2), Rank(7), 2).unwrap();
        let order: Vec<u64> =
            std::iter::from_fn(|| b.dequeue(l(0)).map(|(r, _, _)| r.value())).collect();
        // True PIFO order would be 5,7,10; the block yields 7,10,5... no:
        // heads are f1@10 and f2@7 -> 7 first, then 10, then reinserted 5.
        assert_eq!(order, vec![7, 10, 5]);
    }

    #[test]
    fn pfc_pause_hides_flow_until_resume() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(1), 0).unwrap();
        b.enqueue(l(0), f(2), Rank(2), 1).unwrap();
        b.pause_flow(f(1));
        assert_eq!(b.dequeue(l(0)).unwrap().1, f(2));
        assert!(b.dequeue(l(0)).is_none(), "only paused flow remains");
        b.resume_flow(f(1));
        assert_eq!(b.dequeue(l(0)).unwrap().1, f(1));
    }

    /// A deviation from ideal PIFO semantics the paper leaves implicit:
    /// equal ranks across *different* flows tie-break by flow-scheduler
    /// insertion order. After a reinsert, that order is the reinsert
    /// time, not the original enqueue time — so a cross-flow tie can pop
    /// in non-FIFO order. (Within a flow, FIFO always holds.)
    #[test]
    fn cross_flow_tie_break_deviation() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(44), 0).unwrap(); // flow 1 head
        b.enqueue(l(0), f(2), Rank(44), 1).unwrap(); // flow 2 head (tie @44)
        b.enqueue(l(0), f(2), Rank(71), 2).unwrap(); // flow 2, behind head
        b.enqueue(l(0), f(1), Rank(71), 3).unwrap(); // flow 1, behind head
                                                     // Heads tie at 44 and pop FIFO (m0 then m1) — so flow 1's 71 is
                                                     // reinserted *before* flow 2's 71. An ideal PIFO would pop the
                                                     // 71s in enqueue order (m2 then m3); the block pops m3 then m2.
        assert_eq!(b.dequeue(l(0)).unwrap().2, 0);
        assert_eq!(b.dequeue(l(0)).unwrap().2, 1);
        let third = b.dequeue(l(0)).unwrap();
        let fourth = b.dequeue(l(0)).unwrap();
        assert_eq!(
            (third.2, fourth.2),
            (3, 2),
            "cross-flow tie resolved by reinsert order, not enqueue order"
        );
    }

    #[test]
    fn flow_reactivation_after_drain() {
        let mut b = block();
        b.enqueue(l(0), f(1), Rank(10), 0).unwrap();
        assert!(b.dequeue(l(0)).is_some());
        // Flow drained; in strict mode its monotonicity history resets, so
        // a smaller rank is fine now.
        b.enqueue(l(0), f(1), Rank(3), 1).unwrap();
        assert_eq!(b.dequeue(l(0)).unwrap().0, Rank(3));
    }
}
