//! Quality-vs-throughput frontier of the approximate PIFO family.
//!
//! Every backend — the three exact engines and the approximate family
//! (`sp-pifo` at queue counts 1/2/4/8, `rifo`, `aifo`) — replays the
//! same bounded fill → churn → drain schedule at several standing
//! occupancies and under three traffic models:
//!
//! * `incast`  — 64 synchronized flows with heterogeneous weights,
//!   STFQ-style per-flow virtual-time ranks (the §5.1 fan-in pattern);
//! * `markov`  — 16 on/off flows emitting bursts, so rank order arrives
//!   in interleaved runs;
//! * `pareto`  — SRPT-style ranks drawn i.i.d. from a bounded Pareto
//!   (α = 1.2, 1 KB–200 KB): the heavy-tailed remaining-size
//!   distribution of flow-completion-time scheduling.
//!
//! For each cell the bench records **throughput** (packets/second
//! through the bare queue, no tracking attached) and **quality**: the
//! queue-relative inversion metrics from
//! [`replay_with_stats`](pifo_core::metrics::replay_with_stats) and the
//! positional diff against the unbounded sorted oracle. Three
//! contract-level facts are asserted, not just recorded:
//!
//! 1. exact backends commit **zero** inversions and zero unpifoness on
//!    every trace (bounded or not);
//! 2. SP-PIFO's unpifoness **strictly decreases** as its queue count
//!    grows on the stationary (`pareto`) workload, at every occupancy.
//!    The i.i.d. workload is where the SP-PIFO adaptation argument
//!    applies; under the *drifting* virtual-time ranks of `incast` /
//!    `markov`, arrival order already approximates rank order, so a
//!    plain FIFO (`sp-pifo:1`) is near-ideal and extra queues only
//!    shuffle — the bench records that honestly instead of asserting a
//!    monotonicity the theory does not promise there;
//! 3. in full mode, every approximate backend beats the sorted-array
//!    reference on packets/second at the deepest (60 K) occupancy.
//!
//! A final overhead leg runs the tree hot path with inversion tracking
//! off vs on, asserting the metrics layer is zero-cost when disabled
//! and cheap when enabled.
//!
//! Results go to `BENCH_approx.json` at the repo root (override with
//! `BENCH_APPROX_OUT`); `--smoke` / `BENCH_APPROX_SMOKE=1` drops the
//! 60 K occupancy for CI.

use pifo_core::metrics::{
    replay_with_stats, score_against_oracle, InversionStats, OracleScore, TraceOp,
};
use pifo_core::prelude::*;
use pifo_core::transaction::FnTransaction;
use std::fmt::Write as _;
use std::time::Instant;

/// Deterministic 64-bit LCG (same multiplier as PCG's): benches must be
/// reproducible run to run, so no OS entropy.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform in `[0, 1)` with 31 bits of resolution.
    fn unit(&mut self) -> f64 {
        (self.next() & 0x7fff_ffff) as f64 / (1u64 << 31) as f64
    }
}

/// 64 synchronized flows, weight `1 + f % 8`, round-robin arrivals.
/// Rank = per-flow virtual time (count × weight): the classic fair-queue
/// incast where every flow's next rank interleaves with the others'.
fn incast_ranks(n: usize) -> Vec<u64> {
    const FLOWS: usize = 64;
    let mut counts = [0u64; FLOWS];
    (0..n)
        .map(|i| {
            let f = i % FLOWS;
            counts[f] += 1;
            counts[f] * (1 + f as u64 % 8)
        })
        .collect()
}

/// 16 on/off flows: a burst of 1–32 packets from one flow, then hop to
/// another. Each flow's virtual time advances by a random stride per
/// packet, so arrivals are runs of close ranks from interleaved bands.
fn markov_ranks(n: usize) -> Vec<u64> {
    const FLOWS: usize = 16;
    let mut rng = Lcg(0xC0FFEE);
    let mut vt = [0u64; FLOWS];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let f = (rng.next() as usize) % FLOWS;
        let burst = 1 + (rng.next() as usize) % 32;
        for _ in 0..burst.min(n - out.len()) {
            vt[f] += 1 + rng.next() % 16;
            out.push(vt[f]);
        }
    }
    out
}

/// SRPT ranks: i.i.d. bounded Pareto(α = 1.2) remaining sizes in
/// [1 000, 200 000] bytes via inverse-CDF sampling.
fn pareto_ranks(n: usize) -> Vec<u64> {
    const ALPHA: f64 = 1.2;
    const LO: f64 = 1_000.0;
    const HI: f64 = 200_000.0;
    let mut rng = Lcg(0xBEEF);
    let ratio = (LO / HI).powf(ALPHA);
    (0..n)
        .map(|_| {
            let u = rng.unit();
            (LO / (1.0 - u * (1.0 - ratio)).powf(1.0 / ALPHA)) as u64
        })
        .collect()
}

/// Fill to `occ`, churn `churn` pop-then-push pairs at standing
/// occupancy, then drain. Exact backends never reject on this schedule
/// (the queue is popped before each churn push), so their pop trace is
/// directly comparable to the unbounded oracle's; approximate admission
/// gates may refuse churn pushes — that loss shows up as
/// `oracle.missing`.
fn build_trace(ranks: &[u64], occ: usize, churn: usize) -> Vec<TraceOp> {
    assert!(ranks.len() >= occ + churn);
    let mut trace = Vec::with_capacity(occ + 2 * churn + occ);
    for &r in &ranks[..occ] {
        trace.push(TraceOp::Push(Rank(r)));
    }
    for &r in &ranks[occ..occ + churn] {
        trace.push(TraceOp::Pop);
        trace.push(TraceOp::Push(Rank(r)));
    }
    trace.extend((0..occ).map(|_| TraceOp::Pop));
    trace
}

struct Cell {
    backend: PifoBackend,
    traffic: &'static str,
    occupancy: usize,
    packets: u64,
    elapsed_ns: u128,
    stats: InversionStats,
    oracle: OracleScore,
}

impl Cell {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Timed replay on the bare enum-dispatched queue — the same hot path a
/// switch port drives, no tracker attached.
fn timed_replay(backend: PifoBackend, occ: usize, trace: &[TraceOp]) -> (u64, u128) {
    let mut q = backend.make_enum_bounded::<()>(occ);
    let mut pops = 0u64;
    let start = Instant::now();
    for op in trace {
        match op {
            TraceOp::Push(rank) => {
                let _ = q.try_push(*rank, ());
            }
            TraceOp::Pop => {
                if q.pop().is_some() {
                    pops += 1;
                }
            }
        }
    }
    (pops, start.elapsed().as_nanos())
}

fn run_cell(
    backend: PifoBackend,
    traffic: &'static str,
    occ: usize,
    trace: &[TraceOp],
    oracle_pops: &[Rank],
) -> Cell {
    let (packets, elapsed_ns) = timed_replay(backend, occ, trace);
    let (pops, stats) = replay_with_stats(backend, Some(occ), trace);
    let oracle = score_against_oracle(&pops, oracle_pops);
    if backend.is_exact() {
        assert_eq!(
            stats.inversions, 0,
            "{backend}/{traffic}@{occ}: exact backend committed inversions"
        );
        assert_eq!(
            stats.unpifoness, 0,
            "{backend}/{traffic}@{occ}: exact backend accumulated unpifoness"
        );
        assert!(
            oracle.is_exact(),
            "{backend}/{traffic}@{occ}: exact backend diverged from oracle: {oracle:?}"
        );
    }
    Cell {
        backend,
        traffic,
        occupancy: occ,
        packets,
        elapsed_ns,
        stats,
        oracle,
    }
}

/// A single-node priority tree at standing occupancy — the metrics
/// overhead probe. Returns packets/second of the enqueue+dequeue churn
/// loop with inversion tracking `enabled` or not.
fn tree_churn_pps(tracking: bool, occ: usize, churn: usize) -> f64 {
    let mut b = TreeBuilder::new();
    b.with_backend(PifoBackend::SortedArray)
        .track_inversions(tracking);
    let root = b.add_root(
        "prio",
        Box::new(FnTransaction::new("prio", |ctx: &EnqCtx| {
            Rank(ctx.packet.class as u64)
        })),
    );
    let mut tree = b.build(Box::new(move |_| root)).expect("single-node tree");
    let mut id = 0u64;
    let push = |tree: &mut ScheduleTree, id: &mut u64| {
        let class = (Lcg(*id ^ 0x5DEECE66D).next() % 200) as u8;
        tree.enqueue(
            Packet::new(*id, FlowId(0), 1_000, Nanos(0)).with_class(class),
            Nanos(0),
        )
        .expect("unbounded enqueue");
        *id += 1;
    };
    for _ in 0..occ {
        push(&mut tree, &mut id);
    }
    let start = Instant::now();
    for _ in 0..churn {
        let _ = tree.dequeue(Nanos(1));
        push(&mut tree, &mut id);
    }
    let elapsed = start.elapsed().as_nanos();
    while tree.dequeue(Nanos(1)).is_some() {}
    if tracking {
        let stats = tree.inversion_stats().expect("tracking enabled");
        assert_eq!(stats.inversions, 0, "sorted root must stay exact");
    }
    churn as f64 / (elapsed as f64 / 1e9)
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_APPROX_SMOKE");
    let occupancies: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 60_000]
    };
    const SP_PIFO_KS: [u8; 4] = [1, 2, 4, 8];
    let backends: Vec<PifoBackend> = PifoBackend::EXACT
        .into_iter()
        .chain(SP_PIFO_KS.map(|queues| PifoBackend::SpPifo { queues }))
        .chain([PifoBackend::Rifo, PifoBackend::Aifo])
        .collect();
    type RankGen = fn(usize) -> Vec<u64>;
    let traffics: [(&'static str, RankGen); 3] = [
        ("incast", incast_ranks),
        ("markov", markov_ranks),
        ("pareto", pareto_ranks),
    ];

    let mut cells = Vec::new();
    for &occ in occupancies {
        // Churn at least matches the occupancy (with a floor for small
        // queues): the steady-state phase has to dominate the one-off
        // drain, or drain noise swamps the adaptation signal the
        // k-sweep acceptance gate measures.
        let churn = occ.max(10_000);
        for (traffic, gen) in traffics {
            let ranks = gen(occ + churn);
            let trace = build_trace(&ranks, occ, churn);
            let oracle_pops = pifo_core::metrics::oracle_pop_ranks(&trace);
            for &backend in &backends {
                let cell = run_cell(backend, traffic, occ, &trace, &oracle_pops);
                println!(
                    "approx_quality {traffic:<7} backend={:<9} occ={occ:<6} {:>12.0} pkts/s  \
                     inversions={:<8} unpifoness={:<12} oracle_missing={}",
                    cell.backend.to_string(),
                    cell.pps(),
                    cell.stats.inversions,
                    cell.stats.unpifoness,
                    cell.oracle.missing,
                );
                cells.push(cell);
            }
        }
    }

    // Acceptance: SP-PIFO gets strictly better (lower unpifoness) as its
    // queue count grows on the stationary workload, at every measured
    // occupancy (see the module docs for why the drifting-rank workloads
    // are recorded but not gated).
    for &occ in occupancies {
        let unpifoness_at = |k: u8, traffic: &str| {
            cells
                .iter()
                .filter(|c| {
                    c.occupancy == occ
                        && c.traffic == traffic
                        && c.backend == PifoBackend::SpPifo { queues: k }
                })
                .map(|c| c.stats.unpifoness)
                .sum::<u128>()
        };
        for (traffic, _) in traffics {
            let sweep: Vec<u128> = SP_PIFO_KS
                .iter()
                .map(|&k| unpifoness_at(k, traffic))
                .collect();
            println!("approx_quality sp-pifo unpifoness sweep {traffic} @ {occ}: {sweep:?}");
            if traffic == "pareto" {
                for w in sweep.windows(2) {
                    assert!(
                        w[0] > w[1],
                        "sp-pifo unpifoness must strictly decrease with queue count \
                         on {traffic} at occ {occ}: {sweep:?}"
                    );
                }
            }
        }
    }

    // Acceptance (full mode): every approximate backend out-runs the
    // sorted-array reference at the deepest occupancy, where the O(n)
    // insert cost dominates.
    if let Some(&deep) = occupancies.iter().find(|&&o| o == 60_000) {
        for (traffic, _) in traffics {
            let pps = |backend: PifoBackend| {
                cells
                    .iter()
                    .find(|c| c.occupancy == deep && c.traffic == traffic && c.backend == backend)
                    .expect("cell measured")
                    .pps()
            };
            let sorted = pps(PifoBackend::SortedArray);
            for approx in PifoBackend::APPROX {
                assert!(
                    pps(approx) > sorted,
                    "{approx}/{traffic}@{deep}: approximate backend ({:.0} pkts/s) \
                     must beat sorted ({sorted:.0} pkts/s)",
                    pps(approx)
                );
            }
        }
    }

    // Overhead leg: the tracking hook must cost nothing when disabled
    // and stay cheap when enabled (sorted root: BTreeMap bookkeeping
    // only, no inversions to score).
    let (ovh_occ, ovh_churn) = (10_000, 50_000);
    let pps_off = tree_churn_pps(false, ovh_occ, ovh_churn);
    let pps_on = tree_churn_pps(true, ovh_occ, ovh_churn);
    println!(
        "approx_quality overhead sorted@{ovh_occ}: tracking off {pps_off:.0} pkts/s, \
         on {pps_on:.0} pkts/s ({:.2}x)",
        pps_off / pps_on
    );
    assert!(
        pps_on >= 0.25 * pps_off,
        "enabled tracking must stay within 4x of untracked ({pps_on:.0} vs {pps_off:.0})"
    );
    assert!(
        pps_off >= 0.5 * pps_on,
        "disabled tracking must not be slower than enabled ({pps_off:.0} vs {pps_on:.0})"
    );

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"approx_quality\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"scenario\": \"sorted_tree_churn\", \"occupancy\": {ovh_occ}, \
         \"tracking_off_pps\": {pps_off:.0}, \"tracking_on_pps\": {pps_on:.0}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"traffic\": \"{}\", \"occupancy\": {}, \
             \"packets\": {}, \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}, \
             \"dequeues\": {}, \"inversions\": {}, \"unpifoness\": {}, \
             \"max_regression\": {}, \"mean_displacement\": {:.3}, \
             \"oracle_displaced\": {}, \"oracle_total_displacement\": {}, \
             \"oracle_missing\": {}}}",
            c.backend,
            c.traffic,
            c.occupancy,
            c.packets,
            c.elapsed_ns,
            c.pps(),
            c.stats.dequeues,
            c.stats.inversions,
            c.stats.unpifoness,
            c.stats.max_regression,
            c.stats.mean_displacement(),
            c.oracle.displaced,
            c.oracle.total_displacement,
            c.oracle.missing,
        );
        json.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_APPROX_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_approx.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_approx.json");
    println!("wrote {out}");
}
