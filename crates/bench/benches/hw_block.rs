//! Hardware-model benchmarks: cycle-level mesh throughput and the
//! pipelined flow-scheduler op rate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pifo_algos::Stfq;
use pifo_compiler::{compile, instantiate, TreeSpec};
use pifo_core::prelude::*;
use pifo_hw::{BlockConfig, FlowEntry, LogicalPifoId, PipelinedFlowScheduler};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_sched_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let cycles = 1_000u64;
    group.throughput(Throughput::Elements(cycles * 3));
    group.bench_function("2push_1pop_per_cycle", |b| {
        b.iter(|| {
            let mut pipe = PipelinedFlowScheduler::new(2_048);
            let l = LogicalPifoId(0);
            for cyc in 0..cycles {
                pipe.push(FlowEntry {
                    rank: Rank(cyc * 2),
                    lpifo: l,
                    flow: FlowId((cyc % 1_000) as u32),
                    meta: 0,
                })
                .expect("push");
                pipe.push(FlowEntry {
                    rank: Rank(cyc * 2 + 1),
                    lpifo: l,
                    flow: FlowId(((cyc + 7) % 1_000) as u32),
                    meta: 0,
                })
                .expect("push");
                black_box(pipe.pop(l).expect("pop"));
                pipe.tick();
            }
        })
    });
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_cycles");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &depth in &[2usize, 5] {
        let pkts = 5_000u64;
        group.throughput(Throughput::Elements(pkts));
        group.bench_with_input(BenchmarkId::new("levels", depth), &depth, |b, &depth| {
            b.iter(|| {
                let spec = TreeSpec::linear(depth);
                let layout = compile(&spec).expect("valid");
                let n = layout.placements.len();
                let sched: Vec<Box<dyn SchedulingTransaction>> = (0..n)
                    .map(|_| Box::new(Stfq::unweighted()) as Box<dyn SchedulingTransaction>)
                    .collect();
                let shape = (0..n).map(|_| None).collect();
                let leaf = n - 1;
                let mut mesh = instantiate(
                    &layout,
                    sched,
                    shape,
                    Box::new(move |_| leaf),
                    BlockConfig::default(),
                    1,
                );
                let mut sent = 0u64;
                let mut got = 0u64;
                let mut cycle = 0u64;
                while got < pkts {
                    if sent < pkts
                        && mesh
                            .enqueue_packet(Packet::new(
                                sent,
                                FlowId((sent % 512) as u32),
                                64,
                                mesh.now(),
                            ))
                            .is_ok()
                    {
                        sent += 1;
                    }
                    if cycle % 5 == 4 {
                        if let Ok(Some(p)) = mesh.transmit() {
                            black_box(p);
                            got += 1;
                        }
                    }
                    mesh.tick();
                    cycle += 1;
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_mesh);
criterion_main!(benches);
