//! Lossless-fabric sweep: what PFC-style backpressure costs — and buys —
//! against the drop-based admission policies on the §5.1 incast storm.
//!
//! A 16-port fabric takes the shared-pool incast workload under four
//! buffer disciplines:
//!
//! * `drop_only`    — one pool, global capacity only
//!   (`AdmissionPolicy::Unlimited`): the storm pins the pool and the
//!   fabric sheds load by tail-dropping;
//! * `static`       — fixed per-port thresholds: fenced, still dropping;
//! * `dynamic`      — Choudhury–Hahne thresholds (`alpha = 1`): victims
//!   protected, hog drops continue;
//! * `pfc_lossless` — port×flow admission wired into watermark-driven
//!   pause/resume ([`LosslessFabric`]): **zero drops, asserted** — the
//!   hog is paced to its drain rate instead of shedding.
//!
//! Every discipline runs on every exact PIFO backend; the lossless leg
//! also reports pause counts and peak pool occupancy. Results land in
//! `BENCH_lossless.json` (override with `BENCH_LOSSLESS_OUT`);
//! `--smoke` / `BENCH_LOSSLESS_SMOKE=1` shrinks the sweep for CI.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::switch::{DrainMode, SwitchBuilder};
use pifo_sim::{IncastSource, LosslessConfig, LosslessFabric, LosslessRun, TrafficSource};
use std::fmt::Write as _;
use std::time::Instant;

const PORTS: usize = 16;
const RATE_BPS: u64 = 10_000_000_000;
const POOL_CAPACITY: usize = 1_024;
const WAVE_PKTS: u64 = 1_024;
const WAVE_PERIOD_NS: u64 = 20_000;
const XOFF: usize = 32;
const XON: usize = 8;
const HEADROOM: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Discipline {
    DropOnly,
    Static,
    Dynamic,
    PfcLossless,
}

impl Discipline {
    const ALL: [Discipline; 4] = [
        Discipline::DropOnly,
        Discipline::Static,
        Discipline::Dynamic,
        Discipline::PfcLossless,
    ];

    fn label(self) -> &'static str {
        match self {
            Discipline::DropOnly => "drop_only",
            Discipline::Static => "static",
            Discipline::Dynamic => "dynamic",
            Discipline::PfcLossless => "pfc_lossless",
        }
    }

    fn policy(self) -> AdmissionPolicy {
        match self {
            Discipline::DropOnly => AdmissionPolicy::Unlimited,
            Discipline::Static => AdmissionPolicy::Static {
                per_port: XOFF + HEADROOM,
            },
            Discipline::Dynamic => AdmissionPolicy::DynamicThreshold { num: 1, den: 1 },
            Discipline::PfcLossless => AdmissionPolicy::PortFlow {
                port: Threshold::Static(XOFF + HEADROOM),
                flow: Threshold::Unlimited,
            },
        }
    }
}

struct Record {
    discipline: Discipline,
    backend: PifoBackend,
    packets: u64,
    departed: u64,
    drops: u64,
    pauses: usize,
    peak_pool: usize,
    elapsed_ns: u128,
}

impl Record {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// The drop-based runs replay a pre-generated arrival trace (open loop:
/// the storm does not react to drops).
fn arrivals(waves: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..waves {
        for k in 0..WAVE_PKTS {
            out.push(Packet::new(
                id,
                FlowId((k % 64) as u32),
                1_000,
                Nanos(wave * WAVE_PERIOD_NS),
            ));
            id += 1;
        }
    }
    out
}

/// The lossless run needs live sources (backpressure closes the loop):
/// the same 64-sender incast, emitted reactively.
fn hog_source(waves: u64) -> Vec<Box<dyn TrafficSource>> {
    vec![Box::new(IncastSource::new(
        FlowId(0),
        64,
        1_000,
        (WAVE_PKTS / 64) as u32,
        RATE_BPS,
        Nanos(WAVE_PERIOD_NS),
        Nanos(waves * WAVE_PERIOD_NS),
    )) as Box<dyn TrafficSource>]
}

// Every storm flow lands on port 0; ports 1..15 stand by (their share
// of the pool is what the sizing rule reserves).
fn classify(_: &Packet) -> usize {
    0
}

fn build_switch(discipline: Discipline, backend: PifoBackend) -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_burst(32);
    sb.with_shared_pool(POOL_CAPACITY, discipline.policy());
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool)
                .expect("tree")
        });
    }
    sb.build(Box::new(classify))
}

fn run_drop_based(discipline: Discipline, backend: PifoBackend, arr: &[Packet]) -> Record {
    let mut sw = build_switch(discipline, backend);
    let start = Instant::now();
    let run = sw.run(arr, DrainMode::Batched);
    let elapsed_ns = start.elapsed().as_nanos();
    let handled = run.total_departures() as u64 + run.total_drops();
    assert_eq!(handled, arr.len() as u64, "every packet accounted");
    Record {
        discipline,
        backend,
        packets: handled,
        departed: run.total_departures() as u64,
        drops: run.total_drops(),
        pauses: 0,
        peak_pool: 0,
        elapsed_ns,
    }
}

fn run_lossless(backend: PifoBackend, waves: u64) -> (Record, LosslessRun) {
    let cfg = LosslessConfig::new(XOFF, XON).with_headroom(HEADROOM);
    let mut fabric = LosslessFabric::new(build_switch(Discipline::PfcLossless, backend), cfg);
    let start = Instant::now();
    let run = fabric.run(hog_source(waves), DrainMode::Batched);
    let elapsed_ns = start.elapsed().as_nanos();

    // The zero-drop contract is a bench invariant, not just a column.
    assert!(run.stall.is_none(), "lossless run stalled: {:?}", run.stall);
    assert_eq!(run.total_drops(), 0, "the lossless leg must not drop");
    assert_eq!(run.skid_overflow, 0, "headroom must never overflow");
    assert_eq!(
        run.count_events(pifo_sim::PauseAction::Pause),
        run.count_events(pifo_sim::PauseAction::Resume),
        "every pause must resolve"
    );
    let cfg = LosslessConfig::new(XOFF, XON).with_headroom(HEADROOM);
    assert!(
        run.max_pool_live <= cfg.min_pool_capacity(PORTS),
        "pool peak {} exceeds the sizing rule {}",
        run.max_pool_live,
        cfg.min_pool_capacity(PORTS)
    );

    let departed = run.total_departures() as u64;
    let record = Record {
        discipline: Discipline::PfcLossless,
        backend,
        packets: departed,
        departed,
        drops: 0,
        pauses: run.count_events(pifo_sim::PauseAction::Pause),
        peak_pool: run.max_pool_live,
        elapsed_ns,
    };
    (record, run)
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_LOSSLESS_SMOKE");
    let waves: u64 = if smoke { 25 } else { 400 };
    let arr = arrivals(waves);
    println!(
        "lossless_fabric: {} storm packets ({} waves x {WAVE_PKTS}), {} mode",
        arr.len(),
        waves,
        if smoke { "smoke" } else { "full" }
    );

    let mut results: Vec<Record> = Vec::new();
    for discipline in Discipline::ALL {
        for backend in PifoBackend::EXACT {
            let r = match discipline {
                Discipline::PfcLossless => run_lossless(backend, waves).0,
                _ => run_drop_based(discipline, backend, &arr),
            };
            println!(
                "lossless_fabric {:<13} backend={:<6} {:>12.0} pkts/s  departed={:<8} drops={:<8} pauses={:<6} peak_pool={}",
                r.discipline.label(),
                r.backend.label(),
                r.pps(),
                r.departed,
                r.drops,
                r.pauses,
                r.peak_pool,
            );
            results.push(r);
        }
    }

    // The sweep's comparative claims, asserted:
    let drops_of = |d: Discipline| -> u64 {
        results
            .iter()
            .filter(|r| r.discipline == d)
            .map(|r| r.drops)
            .sum()
    };
    assert!(
        drops_of(Discipline::DropOnly) > 0,
        "the storm must overwhelm the naive pool"
    );
    assert_eq!(drops_of(Discipline::PfcLossless), 0, "lossless is lossless");

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"lossless_fabric\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"ports\": {PORTS},");
    let _ = writeln!(json, "  \"pool_capacity\": {POOL_CAPACITY},");
    let _ = writeln!(json, "  \"xoff\": {XOFF},");
    let _ = writeln!(json, "  \"xon\": {XON},");
    let _ = writeln!(json, "  \"headroom\": {HEADROOM},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"discipline\": \"{}\", \"backend\": \"{}\", \"packets\": {}, \
             \"departed\": {}, \"drops\": {}, \"pauses\": {}, \"peak_pool\": {}, \
             \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}}}",
            r.discipline.label(),
            r.backend.label(),
            r.packets,
            r.departed,
            r.drops,
            r.pauses,
            r.peak_pool,
            r.elapsed_ns,
            r.pps()
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_LOSSLESS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lossless.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_lossless.json");
    println!("wrote {out}");
}
