//! Scheduling-tree benchmarks: per-packet enqueue+dequeue cost of flat
//! WFQ vs 2-level HPFQ vs the 5-level headline hierarchy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pifo_algos::{fig3_hpfq, Hierarchy, Stfq, WeightTable};
use pifo_core::prelude::*;

fn flat_tree() -> ScheduleTree {
    let mut b = TreeBuilder::new();
    let root = b.add_root("wfq", Box::new(Stfq::new(WeightTable::new())));
    b.build(Box::new(move |_| root)).expect("valid")
}

fn five_level_tree() -> ScheduleTree {
    // A chain of classes ending in one leaf with 64 flows.
    let leaf = Hierarchy::leaf("L5", (0..64u32).map(|f| (FlowId(f), 1u64)).collect());
    let mut h = leaf;
    for lvl in (1..5).rev() {
        h = Hierarchy::class(&format!("L{lvl}"), vec![(1, h)]);
    }
    let (tree, _) = h.build();
    tree
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_enq_deq");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::new("flat_wfq", 64), |b| {
        b.iter(|| {
            let mut tree = flat_tree();
            for i in 0..n {
                tree.enqueue(
                    Packet::new(i, FlowId((i % 64) as u32), 1_000, Nanos(i)),
                    Nanos(i),
                )
                .expect("enqueue");
            }
            while let Some(p) = tree.dequeue(Nanos(n)) {
                black_box(p);
            }
        })
    });

    group.bench_function(BenchmarkId::new("hpfq_2level", 4), |b| {
        b.iter(|| {
            let (mut tree, _) = fig3_hpfq();
            for i in 0..n {
                tree.enqueue(
                    Packet::new(i, FlowId((i % 4) as u32), 1_000, Nanos(i)),
                    Nanos(i),
                )
                .expect("enqueue");
            }
            while let Some(p) = tree.dequeue(Nanos(n)) {
                black_box(p);
            }
        })
    });

    group.bench_function(BenchmarkId::new("hierarchy_5level", 64), |b| {
        b.iter(|| {
            let mut tree = five_level_tree();
            for i in 0..n {
                tree.enqueue(
                    Packet::new(i, FlowId((i % 64) as u32), 1_000, Nanos(i)),
                    Nanos(i),
                )
                .expect("enqueue");
            }
            while let Some(p) = tree.dequeue(Nanos(n)) {
                black_box(p);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trees);
criterion_main!(benches);
