//! End-to-end scheduling-tree hot-path throughput: enqueue → (shape) →
//! dequeue for every packet, measured as whole-lifetime packets/second.
//!
//! Three tree shapes stress different parts of the walk:
//!
//! * `hpfq_fig3`   — the paper's Fig 3 HPFQ (2 levels, 4 flows): short
//!   walks, deep PIFOs.
//! * `wide_256`    — one WFQ root fanned out to 256 leaves: a root PIFO
//!   holding one reference per buffered packet.
//! * `shaped_tbf`  — Fig 3's shape with a token-bucket shaper on every
//!   leaf, driven over-rate so a shaping backlog builds up and the
//!   release path (agenda vs. scan) is on the measured path.
//!
//! Each scenario runs at several standing occupancies (fill → churn →
//! drain); the results are printed and written to `BENCH_tree.json` at
//! the repo root (override with `BENCH_TREE_OUT`) so CI can archive a
//! per-PR perf trajectory. `--smoke` (or `BENCH_TREE_SMOKE=1`) skips the
//! largest occupancy for fast CI runs.

use pifo_algos::{fig3_hpfq_with_backend, Hierarchy, Stfq, TokenBucketFilter, WeightTable};
use pifo_core::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// A scenario constructor: backend in, (tree, flow-count) out.
type BuildFn = fn(PifoBackend) -> (ScheduleTree, u32);

/// One measured configuration.
struct Measurement {
    scenario: &'static str,
    backend: PifoBackend,
    occupancy: usize,
    packets: u64,
    elapsed_ns: u128,
}

impl Measurement {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

fn fig3(backend: PifoBackend) -> (ScheduleTree, u32) {
    let (tree, _) = fig3_hpfq_with_backend(backend);
    (tree, 4)
}

fn wide_256(backend: PifoBackend) -> (ScheduleTree, u32) {
    const LEAVES: u32 = 256;
    let children = (0..LEAVES)
        .map(|l| {
            (
                1u64,
                Hierarchy::leaf(&format!("leaf{l}"), vec![(FlowId(l), 1)]),
            )
        })
        .collect();
    let (tree, _) = Hierarchy::class("root", children).build_with_backend(backend);
    (tree, LEAVES)
}

/// Fig 3's hierarchy with an 8 Gb/s one-packet-burst token bucket on each
/// leaf. Arrivals outpace the shapers (a 1000 B packet needs 1 µs of
/// tokens, arrivals come every 10 ns), so suspended references accumulate
/// and the release machinery carries real load.
fn shaped_tbf(backend: PifoBackend) -> (ScheduleTree, u32) {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    // Child ids are assigned densely: left = n1, right = n2.
    let root = b.add_root(
        "WFQ_Root",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(1), 1),
            (FlowId(2), 9),
        ]))),
    );
    let left = b.add_child(
        root,
        "WFQ_Left",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(0), 3),
            (FlowId(1), 7),
        ]))),
    );
    let right = b.add_child(
        root,
        "WFQ_Right",
        Box::new(Stfq::new(WeightTable::from_pairs([
            (FlowId(2), 4),
            (FlowId(3), 6),
        ]))),
    );
    b.set_shaper(left, Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)));
    b.set_shaper(
        right,
        Box::new(TokenBucketFilter::new(8_000_000_000, 1_000)),
    );
    let tree = b
        .build(Box::new(
            move |p: &Packet| {
                if p.flow.0 < 2 {
                    left
                } else {
                    right
                }
            },
        ))
        .expect("valid shaped tree");
    (tree, 4)
}

/// Fill to `occupancy`, churn `churn` enqueue+dequeue pairs at that
/// standing occupancy, then drain. Returns total packets pushed through
/// and the wall-clock time for the whole lifetime.
fn run_one(
    scenario: &'static str,
    backend: PifoBackend,
    build: BuildFn,
    occupancy: usize,
    churn: usize,
) -> Measurement {
    let (mut tree, nflows) = build(backend);
    let mut id = 0u64;
    let mut t = 0u64;
    // 10 ns between arrivals: over-rate for the shaped scenario,
    // irrelevant for the others.
    const GAP: u64 = 10;
    let start = Instant::now();
    for _ in 0..occupancy {
        tree.enqueue(
            Packet::new(id, FlowId((id % nflows as u64) as u32), 1_000, Nanos(t)),
            Nanos(t),
        )
        .expect("unbounded enqueue");
        id += 1;
        t += GAP;
    }
    for _ in 0..churn {
        tree.enqueue(
            Packet::new(id, FlowId((id % nflows as u64) as u32), 1_000, Nanos(t)),
            Nanos(t),
        )
        .expect("unbounded enqueue");
        id += 1;
        t += GAP;
        // May be None in the shaped scenario while the backlog is gated.
        let _ = tree.dequeue(Nanos(t));
    }
    // Drain fully, hopping to shaping releases when gated.
    let mut drained = 0u64;
    let mut now = Nanos(t);
    loop {
        match tree.dequeue(now) {
            Some(_) => drained += 1,
            None => match tree.next_shaping_event() {
                Some(next) => now = Nanos(next.as_nanos().max(now.as_nanos() + 1)),
                None => break,
            },
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    assert!(
        tree.is_empty() && tree.shaped_len() == 0,
        "{scenario}/{backend}: tree must drain (left {} buffered, {} shaped)",
        tree.len(),
        tree.shaped_len()
    );
    assert!(drained > 0);
    Measurement {
        scenario,
        backend,
        occupancy,
        packets: id,
        elapsed_ns,
    }
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_TREE_SMOKE");
    let occupancies: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 60_000]
    };
    let scenarios: &[(&'static str, BuildFn)] = &[
        ("hpfq_fig3", fig3),
        ("wide_256", wide_256),
        ("shaped_tbf", shaped_tbf),
    ];

    let mut results = Vec::new();
    for &(name, build) in scenarios {
        for &occ in occupancies {
            let churn = occ.min(10_000);
            let r = run_one(name, PifoBackend::SortedArray, build, occ, churn);
            println!(
                "tree_hotpath {name:<12} backend={:<6} occ={occ:<6} {:>12.0} pkts/s",
                r.backend.label(),
                r.pps()
            );
            results.push(r);
        }
    }
    // Backend sweep at the headline occupancy for the headline scenario.
    for backend in [PifoBackend::Heap, PifoBackend::Bucket] {
        let r = run_one("hpfq_fig3", backend, fig3, 10_000, 10_000);
        println!(
            "tree_hotpath {:<12} backend={:<6} occ={:<6} {:>12.0} pkts/s",
            r.scenario,
            r.backend.label(),
            r.occupancy,
            r.pps()
        );
        results.push(r);
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"tree_hotpath\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"occupancy\": {}, \
             \"packets\": {}, \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}}}",
            r.scenario,
            r.backend.label(),
            r.occupancy,
            r.packets,
            r.elapsed_ns,
            r.pps()
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_TREE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tree.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_tree.json");
    println!("wrote {out}");
}
