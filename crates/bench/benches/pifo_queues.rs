//! PIFO data-structure benchmarks: every registered software backend
//! (sorted-array reference, binary heap, FFS bucket calendar) vs the
//! hardware-style block, across occupancies up to the Trident-scale
//! 60 K elements of §5.1. The sweep runs each backend through the
//! backend-erased [`PifoBackend::make`] path — the same engine the
//! scheduling tree uses — so the numbers reflect what trees actually pay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pifo_core::prelude::*;
use pifo_hw::{BlockConfig, LogicalPifoId, PifoBlock};

/// Deterministic xorshift for rank streams.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("pifo_push_pop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000, 60_000] {
        group.throughput(Throughput::Elements(n as u64));
        for backend in PifoBackend::ALL {
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut q: BoxedPifo<u64> = backend.make();
                    let mut rng = Rng(42);
                    for i in 0..n as u64 {
                        q.push(Rank(rng.next() % 1_000_000), i);
                    }
                    while let Some(e) = q.pop() {
                        black_box(e);
                    }
                })
            });
        }
    }
    group.finish();
}

/// The §5.2 scaling argument measured: pushing 60 K elements through the
/// hardware block only ever sorts ~1 K flow heads.
fn bench_hw_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_block_60k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &flows in &[256u32, 1_024] {
        group.throughput(Throughput::Elements(60_000));
        group.bench_with_input(BenchmarkId::new("flows", flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut blk = PifoBlock::new(BlockConfig {
                    n_flows: flows as usize,
                    ..BlockConfig::default()
                });
                let l = LogicalPifoId(0);
                let mut rng = Rng(7);
                let mut next = vec![0u64; flows as usize];
                for i in 0..60_000u64 {
                    let f = (rng.next() % flows as u64) as u32;
                    next[f as usize] += 1 + rng.next() % 16;
                    blk.enqueue(l, FlowId(f), Rank(next[f as usize] * 4096 + f as u64), i)
                        .expect("capacity");
                }
                while let Some(e) = blk.dequeue(l) {
                    black_box(e);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_push_pop, bench_hw_block);
criterion_main!(benches);
