//! Rank-computation benchmarks: native Rust transactions vs the same
//! algorithms interpreted from domino-lite source — the cost of
//! programmability in the software model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use domino_lite::{figures, DominoScheduling, DominoShaping};
use pifo_algos::{Stfq, TokenBucketFilter, WeightTable};
use pifo_core::prelude::*;

fn bench_stfq(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_stfq");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    group.bench_function("native", |b| {
        b.iter(|| {
            let mut tx = Stfq::new(WeightTable::new());
            for i in 0..n {
                let p = Packet::new(i, FlowId((i % 16) as u32), 1_000, Nanos(i));
                let ctx = EnqCtx {
                    packet: &p,
                    now: Nanos(i),
                    flow: p.flow,
                };
                black_box(tx.rank(&ctx));
            }
        })
    });

    group.bench_function("domino_interpreted", |b| {
        b.iter(|| {
            let mut tx = DominoScheduling::new("stfq", figures::stfq());
            for i in 0..n {
                let p = Packet::new(i, FlowId((i % 16) as u32), 1_000, Nanos(i));
                let ctx = EnqCtx {
                    packet: &p,
                    now: Nanos(i),
                    flow: p.flow,
                };
                black_box(tx.rank(&ctx));
            }
        })
    });
    group.finish();
}

fn bench_tbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_tbf");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    group.bench_function("native", |b| {
        b.iter(|| {
            let mut tx = TokenBucketFilter::new(10_000_000, 15_000);
            for i in 0..n {
                let p = Packet::new(i, FlowId(0), 1_000, Nanos(i * 100));
                let ctx = EnqCtx {
                    packet: &p,
                    now: Nanos(i * 100),
                    flow: p.flow,
                };
                black_box(tx.send_time(&ctx));
            }
        })
    });

    group.bench_function("domino_interpreted", |b| {
        b.iter(|| {
            let mut tx = DominoShaping::new("tbf", figures::tbf(10_000_000, 15_000));
            for i in 0..n {
                let p = Packet::new(i, FlowId(0), 1_000, Nanos(i * 100));
                let ctx = EnqCtx {
                    packet: &p,
                    now: Nanos(i * 100),
                    flow: p.flow,
                };
                black_box(tx.send_time(&ctx));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stfq, bench_tbf);
criterion_main!(benches);
