//! Multi-port switch-fabric throughput: the shared-classifier → N-port →
//! line-rate-drain pipeline of `pifo_sim::switch`, swept over ports ×
//! PIFO backends × traffic patterns × drain mode, plus a standalone
//! batched-vs-per-packet drain microbench on a standing backlog.
//!
//! Two result kinds land in `BENCH_switch.json` (override the path with
//! `BENCH_SWITCH_OUT`):
//!
//! * `"switch"` — whole-fabric runs: one arrival stream per traffic
//!   pattern (incast, Markov on/off, heavy-tailed flow workload; 1M+
//!   packets each in full mode), classified across 1/4/16 ports, drained
//!   per-packet vs batched. Every batched run is cross-checked
//!   byte-identical against its per-packet twin before timing is
//!   reported.
//! * `"drain"` — the README headline: fill one port's tree to a standing
//!   occupancy, then time *only* the drain, per-packet `dequeue` vs
//!   `dequeue_upto` batches (the single-node fast path reaching
//!   `BucketPifo::pop_batch`).
//!
//! `--smoke` (or `BENCH_SWITCH_SMOKE=1`) shrinks the sweep for CI.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::switch::{DrainMode, SwitchBuilder};
use pifo_sim::traffic::{
    flow_workload, merge, renumber, IncastSource, MarkovOnOffSource, SizeDistribution,
    TrafficSource,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration (either kind).
struct Record {
    kind: &'static str,
    pattern: String,
    ports: usize,
    backend: PifoBackend,
    drain: DrainMode,
    occupancy: usize,
    packets: u64,
    elapsed_ns: u128,
}

impl Record {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// A flat single-node STFQ scheduler — the common per-port program, and
/// the shape that reaches `dequeue_upto`'s pop_batch fast path.
fn port_tree(backend: PifoBackend, buffer: usize) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    b.buffer_limit(buffer);
    let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
    b.build(Box::new(move |_| root)).expect("single-node tree")
}

/// Incast: 64 synchronized senders per wave, bursting every 20 µs.
fn incast_arrivals(target_pkts: usize) -> Vec<Packet> {
    const FANIN: u32 = 64;
    const PKTS_PER_SENDER: u32 = 16;
    let per_epoch = (FANIN * PKTS_PER_SENDER) as usize;
    let epochs = target_pkts.div_ceil(per_epoch) as u64;
    let period = Nanos::from_micros(20);
    let mut src = IncastSource::new(
        FlowId(0),
        FANIN,
        1_000,
        PKTS_PER_SENDER,
        40_000_000_000,
        period,
        Nanos(period.as_nanos() * epochs),
    );
    let mut out: Vec<Packet> = std::iter::from_fn(|| src.next_packet()).collect();
    renumber(&mut out);
    out
}

/// Markov on/off: 64 independently bursting flows.
fn onoff_arrivals(target_pkts: usize) -> Vec<Packet> {
    const FLOWS: u32 = 64;
    // Mean cycle: 16 packets * 1 µs on-rate + 10 µs idle ≈ 26 µs per
    // flow, so packets/flow ≈ horizon / 1.6 µs.
    let horizon = Nanos((target_pkts as u64 / FLOWS as u64) * 1_650);
    let sources: Vec<Box<dyn TrafficSource>> = (0..FLOWS)
        .map(|f| {
            Box::new(MarkovOnOffSource::new(
                FlowId(f),
                1_000,
                16.0,
                8_000_000_000,
                Nanos::from_micros(10),
                horizon,
                0xC0FFEE + f as u64,
            )) as Box<dyn TrafficSource>
        })
        .collect();
    let mut out = merge(sources);
    renumber(&mut out);
    out
}

/// Heavy-tailed flow workload: bounded-Pareto sizes, Poisson flow
/// arrivals, packets injected at access-link rate.
fn heavytail_arrivals(target_pkts: usize) -> Vec<Packet> {
    let dist = SizeDistribution::bounded_pareto(1.2, 1_000, 10_000_000);
    // Discretized mean ≈ 5 KB ≈ 3.3 MTU packets per flow.
    let n_flows = (target_pkts / 3).max(1);
    let (pkts, _) = flow_workload(n_flows, 2_000_000.0, &dist, 10_000_000_000, 1_500, 7);
    pkts
}

/// Run one fabric configuration; `verify` additionally runs the
/// per-packet twin and asserts byte-identical per-port traces first.
fn run_switch_config(
    pattern: &str,
    arrivals: &[Packet],
    ports: usize,
    backend: PifoBackend,
    drain: DrainMode,
    verify: bool,
) -> Record {
    let build = |backend: PifoBackend| {
        let mut sb = SwitchBuilder::new(10_000_000_000);
        for _ in 0..ports {
            sb.add_port(port_tree(backend, 60_000));
        }
        sb.with_burst(64);
        let n = ports;
        sb.build(Box::new(move |p: &Packet| p.flow.0 as usize % n))
    };

    if verify {
        let a = build(backend).run(arrivals, DrainMode::PerPacket);
        let b = build(backend).run(arrivals, DrainMode::Batched);
        assert_eq!(a.misrouted, b.misrouted);
        for (port, (x, y)) in a.ports.iter().zip(&b.ports).enumerate() {
            assert_eq!(x.drops, y.drops, "{pattern}/{backend} port {port} drops");
            assert_eq!(
                x.departures.len(),
                y.departures.len(),
                "{pattern}/{backend} port {port} count"
            );
            for (dx, dy) in x.departures.iter().zip(&y.departures) {
                assert_eq!(
                    dx, dy,
                    "{pattern}/{backend} port {port}: batched trace diverges"
                );
            }
        }
    }

    let mut sw = build(backend);
    let start = Instant::now();
    let run = sw.run(arrivals, drain);
    let elapsed_ns = start.elapsed().as_nanos();
    let handled = run.total_departures() as u64 + run.total_drops();
    assert!(handled > 0, "{pattern}: fabric must move packets");
    Record {
        kind: "switch",
        pattern: pattern.to_string(),
        ports,
        backend,
        drain,
        occupancy: 0,
        packets: handled,
        elapsed_ns,
    }
}

/// The drain microbench: fill a single-node tree to `occupancy`, then
/// time only the drain (per-packet vs batches of 64).
///
/// Ranks are arrival timestamps (FIFO), i.e. dense integers — the bucket
/// calendar's design point, where batch pops drain whole buckets in one
/// `memmove` instead of one find-first-set round trip per element.
///
/// A single drain lasts only a few hundred µs, so one observation is at
/// the mercy of frequency scaling and scheduler noise. The two modes are
/// therefore sampled **interleaved** (per-packet, batched, per-packet,
/// batched, …) for `DRAIN_REPS` rounds with the first discarded as
/// warm-up, and each leg reports its **median** round — slow phases of
/// the machine hit both legs equally and outlier rounds cannot skew the
/// ratio.
fn run_drain_pair(backend: PifoBackend, occupancy: usize) -> [Record; 2] {
    const DRAIN_REPS: usize = 9; // 1 warm-up + 8 measured, alternating
    let fill = || -> ScheduleTree {
        let mut b = TreeBuilder::new();
        b.with_backend(backend);
        b.buffer_limit(occupancy + 1);
        let root = b.add_root(
            "fifo",
            Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx| {
                Rank(ctx.now.as_nanos())
            })),
        );
        let mut tree = b.build(Box::new(move |_| root)).expect("single-node tree");
        for i in 0..occupancy as u64 {
            tree.enqueue(
                Packet::new(i, FlowId((i % 256) as u32), 1_000, Nanos(i)),
                Nanos(i),
            )
            .expect("within buffer limit");
        }
        tree
    };

    let now = Nanos(occupancy as u64);
    let mut out: Vec<Packet> = Vec::with_capacity(64);
    let modes = [DrainMode::PerPacket, DrainMode::Batched];
    let mut samples: [Vec<u128>; 2] = [Vec::new(), Vec::new()];
    for rep in 0..DRAIN_REPS {
        for (mi, mode) in modes.iter().enumerate() {
            let mut tree = fill();
            let start = Instant::now();
            let mut drained = 0u64;
            match mode {
                DrainMode::PerPacket => {
                    while let Some(_p) = tree.dequeue(now) {
                        drained += 1;
                    }
                }
                // A single tree has no port fan-out to parallelise, so
                // the Parallel mode degenerates to the batched drain.
                DrainMode::Batched | DrainMode::Parallel { .. } => loop {
                    out.clear();
                    let n = tree.dequeue_upto(now, 64, &mut out);
                    if n == 0 {
                        break;
                    }
                    drained += n as u64;
                },
            }
            let elapsed_ns = start.elapsed().as_nanos();
            assert_eq!(drained, occupancy as u64, "tree must drain fully");
            if rep > 0 {
                samples[mi].push(elapsed_ns);
            }
        }
    }
    let record = |mi: usize| {
        let s = &mut samples[mi].clone();
        s.sort_unstable();
        Record {
            kind: "drain",
            pattern: "standing_backlog".to_string(),
            ports: 1,
            backend,
            drain: modes[mi],
            occupancy,
            packets: occupancy as u64,
            elapsed_ns: s[s.len() / 2],
        }
    };
    [record(0), record(1)]
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_SWITCH_SMOKE");

    let (target_pkts, port_counts, patterns): (usize, &[usize], &[&str]) = if smoke {
        (60_000, &[4], &["incast"])
    } else {
        (1_200_000, &[1, 4, 16], &["incast", "onoff", "heavytail"])
    };

    let mut results: Vec<Record> = Vec::new();

    // ---- Fabric sweep: pattern × ports × backend × drain mode ----------
    for &pattern in patterns {
        let arrivals = match pattern {
            "incast" => incast_arrivals(target_pkts),
            "onoff" => onoff_arrivals(target_pkts),
            "heavytail" => heavytail_arrivals(target_pkts),
            other => unreachable!("unknown pattern {other}"),
        };
        if !smoke {
            assert!(
                arrivals.len() >= 1_000_000,
                "{pattern}: full mode must sweep 1M+ packets (got {})",
                arrivals.len()
            );
        }
        println!("pattern {pattern:<10} {} arrival packets", arrivals.len());
        for &ports in port_counts {
            for backend in PifoBackend::ALL {
                for drain in [DrainMode::PerPacket, DrainMode::Batched] {
                    // Cross-check traces once per (pattern, ports, backend),
                    // on the batched leg.
                    let verify = drain == DrainMode::Batched;
                    let r = run_switch_config(pattern, &arrivals, ports, backend, drain, verify);
                    println!(
                        "switch_fabric {pattern:<10} ports={ports:<3} backend={:<6} drain={:<10} {:>12.0} pkts/s",
                        r.backend.label(),
                        r.drain.label(),
                        r.pps()
                    );
                    results.push(r);
                }
            }
        }
    }

    // ---- Drain microbench: standing backlog, batched vs per-packet -----
    let occupancies: &[usize] = if smoke { &[10_000] } else { &[10_000, 60_000] };
    for &occ in occupancies {
        for backend in PifoBackend::ALL {
            let pair = run_drain_pair(backend, occ);
            let speedup = pair[1].pps() / pair[0].pps();
            for r in pair {
                println!(
                    "switch_fabric drain      occ={occ:<6} backend={:<6} drain={:<10} {:>12.0} pkts/s",
                    r.backend.label(),
                    r.drain.label(),
                    r.pps()
                );
                results.push(r);
            }
            println!(
                "switch_fabric drain      occ={occ:<6} backend={:<6} batched/per-packet = {speedup:.2}x",
                backend.label(),
            );
        }
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"switch_fabric\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kind\": \"{}\", \"pattern\": \"{}\", \"ports\": {}, \"backend\": \"{}\", \
             \"drain\": \"{}\", \"occupancy\": {}, \"packets\": {}, \"elapsed_ns\": {}, \
             \"pkts_per_sec\": {:.0}}}",
            r.kind,
            r.pattern,
            r.ports,
            r.backend.label(),
            r.drain.label(),
            r.occupancy,
            r.packets,
            r.elapsed_ns,
            r.pps()
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_SWITCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_switch.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_switch.json");
    println!("wrote {out}");
}
