//! Shared-pool admission sweep: the §5.1/§6.1 memory system under an
//! incast storm, comparing three buffer organisations on a 16-port
//! fabric —
//!
//! * `private`    — every port owns a private slab (the pre-pool design:
//!   ports are embarrassingly independent, the storm cannot touch the
//!   victims and the victims cannot borrow the storm's idle memory);
//! * `shared_naive` — one pool, global capacity only
//!   (`AdmissionPolicy::Unlimited`): the storm pins the pool and locks
//!   the victim ports out;
//! * `shared_dynamic` — one pool behind Choudhury–Hahne dynamic
//!   thresholds (`alpha = 1`): the storm is fenced to a fraction of the
//!   pool and victim drops return to zero.
//!
//! Every configuration runs per-packet and batched (the batched leg is
//! cross-checked byte-identical first), so the table also shows the
//! enqueue-side win of same-leaf run batching — incast delivers exactly
//! those runs. Results land in `BENCH_pool.json` (override with
//! `BENCH_POOL_OUT`); `--smoke` / `BENCH_POOL_SMOKE=1` shrinks the sweep
//! for CI.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::switch::{DrainMode, SwitchBuilder};
use std::fmt::Write as _;
use std::time::Instant;

const PORTS: usize = 16;
const POOL_CAPACITY: usize = 1_024;
const WAVE_PKTS: u64 = 1_024;
const WAVE_PERIOD_NS: u64 = 20_000;
const VICTIM_BURST: u64 = 64;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Private,
    SharedNaive,
    SharedDynamic,
}

impl Config {
    const ALL: [Config; 3] = [Config::Private, Config::SharedNaive, Config::SharedDynamic];

    fn label(self) -> &'static str {
        match self {
            Config::Private => "private",
            Config::SharedNaive => "shared_naive",
            Config::SharedDynamic => "shared_dynamic",
        }
    }
}

struct Record {
    config: Config,
    backend: PifoBackend,
    drain: DrainMode,
    packets: u64,
    hog_drops: u64,
    victim_drops: u64,
    elapsed_ns: u128,
}

impl Record {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// The storm + victims workload: `waves` incast waves of 1 024 packets
/// into port 0 (8× the port drain rate, so the pool stays pinned), and a
/// 64-packet victim burst per port 1..15 every 500 µs, staggered.
fn arrivals(waves: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..waves {
        for k in 0..WAVE_PKTS {
            out.push(Packet::new(
                id,
                FlowId((k % 64) as u32),
                1_000,
                Nanos(wave * WAVE_PERIOD_NS),
            ));
            id += 1;
        }
    }
    let horizon = waves * WAVE_PERIOD_NS;
    for port in 1..PORTS as u64 {
        let mut t = 50_000 + 30_000 * (port - 1);
        while t < horizon {
            for _ in 0..VICTIM_BURST {
                out.push(Packet::new(id, FlowId(100 + port as u32), 1_000, Nanos(t)));
                id += 1;
            }
            t += 500_000;
        }
    }
    out.sort_by_key(|p| p.arrival);
    out
}

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        (p.flow.0 as usize - 100) % PORTS
    }
}

fn build_switch(config: Config, backend: PifoBackend) -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(10_000_000_000);
    sb.with_burst(32);
    match config {
        Config::Private => {
            for port in 0..PORTS {
                let mut b = TreeBuilder::new();
                b.with_backend(backend);
                if port == 0 {
                    b.buffer_limit(POOL_CAPACITY);
                }
                let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
                sb.add_port(b.build(Box::new(move |_| root)).expect("tree"));
            }
        }
        Config::SharedNaive | Config::SharedDynamic => {
            let policy = if config == Config::SharedNaive {
                AdmissionPolicy::Unlimited
            } else {
                AdmissionPolicy::DynamicThreshold { num: 1, den: 1 }
            };
            sb.with_shared_pool(POOL_CAPACITY, policy);
            for _ in 0..PORTS {
                sb.add_shared_port(|pool| {
                    let mut b = TreeBuilder::new();
                    b.with_backend(backend);
                    let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
                    b.build_in_pool(Box::new(move |_| root), pool)
                        .expect("tree")
                });
            }
        }
    }
    sb.build(Box::new(classify))
}

fn run_config(
    config: Config,
    backend: PifoBackend,
    drain: DrainMode,
    arr: &[Packet],
    verify: bool,
) -> Record {
    if verify {
        let a = build_switch(config, backend).run(arr, DrainMode::PerPacket);
        let b = build_switch(config, backend).run(arr, DrainMode::Batched);
        for (port, (x, y)) in a.ports.iter().zip(&b.ports).enumerate() {
            assert_eq!(
                x.drops,
                y.drops,
                "{}/{backend} port {port} drops",
                config.label()
            );
            assert_eq!(
                x.departures.len(),
                y.departures.len(),
                "{}/{backend} port {port} count",
                config.label()
            );
            for (dx, dy) in x.departures.iter().zip(&y.departures) {
                assert_eq!(
                    dx,
                    dy,
                    "{}/{backend} port {port}: batched trace diverges",
                    config.label()
                );
            }
        }
    }

    let mut sw = build_switch(config, backend);
    let start = Instant::now();
    let run = sw.run(arr, drain);
    let elapsed_ns = start.elapsed().as_nanos();
    let handled = run.total_departures() as u64 + run.total_drops();
    assert_eq!(handled, arr.len() as u64, "every packet accounted");
    Record {
        config,
        backend,
        drain,
        packets: handled,
        hog_drops: run.ports[0].drops,
        victim_drops: run.ports[1..].iter().map(|p| p.drops).sum(),
        elapsed_ns,
    }
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_POOL_SMOKE");

    // Full mode: ~1.2 M storm packets (+ victim bursts). Smoke: ~60 K.
    let waves: u64 = if smoke { 58 } else { 1_200 };
    let arr = arrivals(waves);
    println!(
        "shared_pool: {} arrival packets ({} waves x {WAVE_PKTS} + victim bursts), {} mode",
        arr.len(),
        waves,
        if smoke { "smoke" } else { "full" }
    );

    let mut results: Vec<Record> = Vec::new();
    for config in Config::ALL {
        for backend in PifoBackend::ALL {
            for drain in [DrainMode::PerPacket, DrainMode::Batched] {
                // Cross-check traces once per (config, backend), on the
                // batched leg.
                let verify = drain == DrainMode::Batched;
                let r = run_config(config, backend, drain, &arr, verify);
                println!(
                    "shared_pool {:<15} backend={:<6} drain={:<10} {:>12.0} pkts/s  hog_drops={:<8} victim_drops={}",
                    r.config.label(),
                    r.backend.label(),
                    r.drain.label(),
                    r.pps(),
                    r.hog_drops,
                    r.victim_drops,
                );
                results.push(r);
            }
        }
        // Admission behaviour is a correctness claim of the sweep, not
        // just a number: victims must drop under the naive cap and must
        // not under dynamic thresholds (or private slabs).
        let victim_drops: u64 = results
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.victim_drops)
            .sum();
        match config {
            Config::SharedNaive => {
                assert!(victim_drops > 0, "naive shared cap must lock victims out")
            }
            Config::Private | Config::SharedDynamic => assert_eq!(
                victim_drops,
                0,
                "{} must not drop victim packets",
                config.label()
            ),
        }
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"shared_pool\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"ports\": {PORTS},");
    let _ = writeln!(json, "  \"pool_capacity\": {POOL_CAPACITY},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"config\": \"{}\", \"backend\": \"{}\", \"drain\": \"{}\", \
             \"packets\": {}, \"hog_drops\": {}, \"victim_drops\": {}, \
             \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}}}",
            r.config.label(),
            r.backend.label(),
            r.drain.label(),
            r.packets,
            r.hog_drops,
            r.victim_drops,
            r.elapsed_ns,
            r.pps()
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_POOL_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_pool.json");
    println!("wrote {out}");
}
