//! Multi-core fabric drain sweep: a 16-port incast fabric with private
//! per-port slabs (the embarrassingly-parallel configuration) drained
//! sequentially (`PerPacket`, `Batched`) and with
//! [`DrainMode::Parallel`] at 1, 2, 4, and 8 workers.
//!
//! Every parallel leg's per-port departure traces are cross-checked
//! byte-identical to the batched sequential run before timing — the
//! sweep measures a drain that is *provably* the same schedule, not a
//! relaxed one. Results land in `BENCH_parallel.json` (override with
//! `BENCH_PARALLEL_OUT`); `--smoke` / `BENCH_PARALLEL_SMOKE=1` shrinks
//! the sweep for CI.
//!
//! The JSON records `available_parallelism` so the numbers are
//! interpretable: on a 1-core box the parallel legs can only tie the
//! sequential drain (worker threads time-slice one core), so the ≥2×
//! speedup check is asserted only when ≥4 cores are actually available
//! (and not in smoke mode, where the workload is too small to amortise
//! thread startup).

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::switch::{DrainMode, SwitchBuilder, SwitchRun};
use std::fmt::Write as _;
use std::time::Instant;

const PORTS: usize = 16;
/// Incast fan-in per port: 16 flows converge on every output port.
const FANIN: u64 = 16;
const WAVE_PERIOD_NS: u64 = 20_000;
const PORT_BUFFER: usize = 512;

/// Synchronized incast onto all 16 ports: every wave lands `FANIN`
/// packets on every port simultaneously, so each port carries the same
/// heavy load and the parallel drain has 16 equal shards to spread.
fn arrivals(waves: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..waves {
        for k in 0..FANIN {
            for port in 0..PORTS as u64 {
                // classify() routes flow f to port f % PORTS.
                let flow = (port + PORTS as u64 * k) as u32;
                out.push(Packet::new(
                    id,
                    FlowId(flow),
                    1_000,
                    Nanos(wave * WAVE_PERIOD_NS),
                ));
                id += 1;
            }
        }
    }
    out
}

fn classify(p: &Packet) -> usize {
    p.flow.0 as usize % PORTS
}

fn build_switch() -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(10_000_000_000);
    sb.with_burst(32);
    for _ in 0..PORTS {
        let mut b = TreeBuilder::new();
        b.buffer_limit(PORT_BUFFER);
        let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
        sb.add_port(b.build(Box::new(move |_| root)).expect("tree"));
    }
    sb.build(Box::new(classify))
}

struct Record {
    drain: String,
    workers: Option<usize>,
    packets: u64,
    elapsed_ns: u128,
}

impl Record {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

fn run_mode(mode: DrainMode, arr: &[Packet]) -> (Record, SwitchRun) {
    let mut sw = build_switch();
    let start = Instant::now();
    let run = sw.run(arr, mode);
    let elapsed_ns = start.elapsed().as_nanos();
    let handled = run.total_departures() as u64 + run.total_drops() + run.misrouted;
    assert_eq!(handled, arr.len() as u64, "every packet accounted");
    let (drain, workers) = match mode {
        DrainMode::Parallel { workers } => ("parallel".to_string(), Some(workers)),
        other => (other.label().to_string(), None),
    };
    (
        Record {
            drain,
            workers,
            packets: handled,
            elapsed_ns,
        },
        run,
    )
}

fn assert_same_schedule(label: &str, reference: &SwitchRun, candidate: &SwitchRun) {
    for (port, (a, b)) in reference.ports.iter().zip(&candidate.ports).enumerate() {
        assert_eq!(a.drops, b.drops, "[{label}] port {port} drops diverge");
        assert_eq!(
            a.departures, b.departures,
            "[{label}] port {port} trace diverges from sequential"
        );
    }
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_PARALLEL_SMOKE");

    // Full mode: ~1.3 M packets (5 000 waves x 16 ports x 16 fan-in).
    // Smoke: ~5 K.
    let waves: u64 = if smoke { 20 } else { 5_000 };
    let arr = arrivals(waves);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel_drain: {} arrival packets ({} waves x {PORTS} ports x {FANIN} fan-in), \
         {} mode, {} core(s) available",
        arr.len(),
        waves,
        if smoke { "smoke" } else { "full" },
        cores,
    );

    let mut results: Vec<Record> = Vec::new();

    let (per_packet, _) = run_mode(DrainMode::PerPacket, &arr);
    println!(
        "parallel_drain drain=per_packet          {:>12.0} pkts/s",
        per_packet.pps()
    );
    results.push(per_packet);

    let (batched, reference) = run_mode(DrainMode::Batched, &arr);
    let baseline_pps = batched.pps();
    println!("parallel_drain drain=batched             {baseline_pps:>12.0} pkts/s  (baseline)");
    results.push(batched);

    let mut speedup_at_4 = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let (r, run) = run_mode(DrainMode::Parallel { workers }, &arr);
        assert_same_schedule(&format!("parallel-w{workers}"), &reference, &run);
        let speedup = r.pps() / baseline_pps;
        if workers == 4 {
            speedup_at_4 = speedup;
        }
        println!(
            "parallel_drain drain=parallel workers={workers:<2} {:>12.0} pkts/s  ({speedup:.2}x batched)",
            r.pps(),
        );
        results.push(r);
    }

    // The acceptance check needs real cores under the workers and a
    // workload large enough to amortise thread startup; on fewer than 4
    // cores (or in smoke mode) the numbers are still recorded but not
    // asserted.
    if !smoke && cores >= 4 {
        assert!(
            speedup_at_4 >= 2.0,
            "expected >= 2x batched throughput at 4 workers on {cores} cores, got {speedup_at_4:.2}x"
        );
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"parallel_drain\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"ports\": {PORTS},");
    let _ = writeln!(json, "  \"fan_in\": {FANIN},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let workers = r
            .workers
            .map_or_else(|| "null".to_string(), |w| w.to_string());
        let _ = write!(
            json,
            "    {{\"drain\": \"{}\", \"workers\": {workers}, \"packets\": {}, \
             \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}, \"speedup_vs_batched\": {:.3}}}",
            r.drain,
            r.packets,
            r.elapsed_ns,
            r.pps(),
            r.pps() / baseline_pps,
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_PARALLEL_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    println!("wrote {out}");
}
