//! Telemetry overhead on the 16-port incast fabric: what the flight
//! recorder and the per-packet path records cost — and the proof they
//! only observe.
//!
//! The §5.1 incast storm (64 flows, 1024-packet waves every 20 µs)
//! sprays across a 16-port shared-pool switch under Choudhury–Hahne
//! thresholds. Every exact backend runs three telemetry modes:
//!
//! * `off`            — no telemetry (the baseline hot path);
//! * `recorder`       — per-tree flight-recorder rings + sampled gauges;
//! * `recorder_paths` — the above plus INT-style per-packet path
//!   records (the most expensive mode).
//!
//! Three invariants are asserted, not just reported:
//!
//! 1. departure traces are **bit-identical** across all three modes
//!    (telemetry observes, never steers);
//! 2. the flight-recorder mode costs at most 10% throughput on the
//!    full-scale run (the acceptance bound; the smoke run uses a loose
//!    sanity bound because tiny runs are timing noise);
//! 3. the event stream reconciles with the trace: enqueue = pool-alloc
//!    = admitted, dequeue = departed, drop events = trace drops, and
//!    one path record per departure.
//!
//! Results land in `BENCH_telemetry.json` (override with
//! `BENCH_TELEMETRY_OUT`); `--smoke` / `BENCH_TELEMETRY_SMOKE=1`
//! shrinks the sweep for CI.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_core::telemetry::EventKind;
use pifo_sim::switch::{DrainMode, SwitchBuilder, SwitchRun};
use std::fmt::Write as _;
use std::time::Instant;

const PORTS: usize = 16;
const RATE_BPS: u64 = 10_000_000_000;
const POOL_CAPACITY: usize = 1_024;
const WAVE_PKTS: u64 = 1_024;
const WAVE_PERIOD_NS: u64 = 20_000;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Recorder,
    RecorderPaths,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Off, Mode::Recorder, Mode::RecorderPaths];

    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Recorder => "recorder",
            Mode::RecorderPaths => "recorder_paths",
        }
    }

    fn config(self) -> Option<TelemetryConfig> {
        match self {
            Mode::Off => None,
            Mode::Recorder => Some(TelemetryConfig::default()),
            Mode::RecorderPaths => Some(TelemetryConfig::with_paths()),
        }
    }
}

struct Record {
    backend: PifoBackend,
    mode: Mode,
    packets: u64,
    departed: u64,
    drops: u64,
    elapsed_ns: u128,
    ratio_vs_off: f64,
    events_recorded: u64,
    events_retained: usize,
    path_records: usize,
}

impl Record {
    fn pps(&self) -> f64 {
        self.packets as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// The incast storm, spread across all 16 ports by the flow classifier.
fn arrivals(waves: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..waves {
        for k in 0..WAVE_PKTS {
            out.push(Packet::new(
                id,
                FlowId((k % 64) as u32),
                1_000,
                Nanos(wave * WAVE_PERIOD_NS),
            ));
            id += 1;
        }
    }
    out
}

fn build_switch(backend: PifoBackend, mode: Mode) -> pifo_sim::Switch {
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_burst(32);
    sb.with_shared_pool(
        POOL_CAPACITY,
        AdmissionPolicy::DynamicThreshold { num: 1, den: 1 },
    );
    if let Some(cfg) = mode.config() {
        sb.with_telemetry(cfg);
    }
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool)
                .expect("tree")
        });
    }
    sb.build(Box::new(|p: &Packet| p.flow.0 as usize % PORTS))
}

/// Run all three telemetry modes for one backend, `reps` times each,
/// **interleaved** (off, recorder, recorder_paths, off, …) so that
/// machine-speed drift between cells hits every mode equally. Returns
/// per-mode fastest elapsed time plus one trace and snapshot (runs are
/// deterministic, so any rep's trace is *the* trace).
fn measure_all(
    backend: PifoBackend,
    arr: &[Packet],
    reps: usize,
) -> [(u128, SwitchRun, Option<TelemetrySnapshot>); 3] {
    let mut best: [Option<(u128, SwitchRun, Option<TelemetrySnapshot>)>; 3] = [None, None, None];
    for _ in 0..reps {
        for (slot, mode) in Mode::ALL.into_iter().enumerate() {
            let mut sw = build_switch(backend, mode);
            let start = Instant::now();
            let run = sw.run(arr, DrainMode::Batched);
            let elapsed = start.elapsed().as_nanos();
            match &mut best[slot] {
                Some((b, _, _)) => *b = (*b).min(elapsed),
                None => {
                    let snap = sw.telemetry_snapshot(&run);
                    best[slot] = Some((elapsed, run, snap));
                }
            }
        }
    }
    best.map(|b| b.expect("reps >= 1"))
}

fn main() {
    let smoke = pifo_bench::cli::smoke_flag("BENCH_TELEMETRY_SMOKE");
    let (waves, reps): (u64, usize) = if smoke { (25, 2) } else { (400, 5) };
    let arr = arrivals(waves);
    println!(
        "telemetry_overhead: {} storm packets ({} waves x {WAVE_PKTS}) across {PORTS} ports, {} mode",
        arr.len(),
        waves,
        if smoke { "smoke" } else { "full" }
    );

    let mut results: Vec<Record> = Vec::new();
    for backend in PifoBackend::EXACT {
        let mut off_elapsed = 0u128;
        let mut off_run: Option<SwitchRun> = None;
        let cells = measure_all(backend, &arr, reps);
        for (mode, (elapsed_ns, run, snap)) in Mode::ALL.into_iter().zip(cells) {
            let departed = run.total_departures() as u64;
            let drops = run.total_drops();
            assert_eq!(departed + drops, arr.len() as u64, "every packet accounted");

            // Invariant 1: telemetry observes, never steers.
            if let Some(reference) = &off_run {
                for (port, (a, b)) in reference.ports.iter().zip(&run.ports).enumerate() {
                    assert_eq!(
                        a.departures,
                        b.departures,
                        "[{backend}/{}] port {port} trace diverges from telemetry-off",
                        mode.label()
                    );
                    assert_eq!(
                        a.drops,
                        b.drops,
                        "[{backend}/{}] port {port} drops",
                        mode.label()
                    );
                }
            }

            // Invariant 3: the event stream reconciles with the trace.
            let (events_recorded, events_retained) = match &snap {
                Some(s) => {
                    assert_eq!(s.count(EventKind::Enqueue), departed, "enqueues = admitted");
                    assert_eq!(s.count(EventKind::PoolAlloc), departed, "allocs = admitted");
                    assert_eq!(s.count(EventKind::Dequeue), departed, "dequeues = departed");
                    assert_eq!(s.count(EventKind::PoolFree), departed, "frees = departed");
                    assert_eq!(s.count(EventKind::Drop), drops, "drop events = trace drops");
                    (s.events_recorded, s.events.len())
                }
                None => (0, 0),
            };
            let path_records: usize = run.ports.iter().map(|p| p.paths.len()).sum();
            if mode == Mode::RecorderPaths {
                assert_eq!(
                    path_records as u64, departed,
                    "one path record per departure"
                );
            }

            let ratio_vs_off = match mode {
                Mode::Off => {
                    off_elapsed = elapsed_ns;
                    off_run = Some(run.clone());
                    1.0
                }
                _ => elapsed_ns as f64 / off_elapsed as f64,
            };
            // Invariant 2: the flight recorder is cheap. The acceptance
            // bound holds on the full-scale run; smoke runs are too
            // short to time meaningfully, so only a sanity bound there.
            if mode == Mode::Recorder {
                let bound = if smoke { 3.0 } else { 1.10 };
                assert!(
                    ratio_vs_off <= bound,
                    "[{backend}] flight recorder costs {:.1}% (> {:.0}% bound)",
                    (ratio_vs_off - 1.0) * 100.0,
                    (bound - 1.0) * 100.0
                );
            }

            println!(
                "telemetry_overhead backend={:<6} mode={:<14} {:>12.0} pkts/s  ratio={:.3}  events={:<9} paths={}",
                backend.label(),
                mode.label(),
                arr.len() as f64 / (elapsed_ns as f64 / 1e9),
                ratio_vs_off,
                events_recorded,
                path_records,
            );
            results.push(Record {
                backend,
                mode,
                packets: arr.len() as u64,
                departed,
                drops,
                elapsed_ns,
                ratio_vs_off,
                events_recorded,
                events_retained,
                path_records,
            });
        }
    }

    // Determinism cross-check (one cell): the merged event stream is
    // identical whether the fabric drains per-packet or batched.
    {
        let backend = PifoBackend::default();
        let snap_of = |mode: DrainMode| {
            let mut sw = build_switch(backend, Mode::RecorderPaths);
            let run = sw.run(&arr, mode);
            sw.telemetry_snapshot(&run).expect("telemetry on")
        };
        assert_eq!(
            snap_of(DrainMode::PerPacket),
            snap_of(DrainMode::Batched),
            "event stream must be drain-mode invariant"
        );
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n  \"bench\": \"telemetry_overhead\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"ports\": {PORTS},");
    let _ = writeln!(json, "  \"pool_capacity\": {POOL_CAPACITY},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"telemetry\": \"{}\", \"packets\": {}, \
             \"departed\": {}, \"drops\": {}, \"elapsed_ns\": {}, \"pkts_per_sec\": {:.0}, \
             \"ratio_vs_off\": {:.4}, \"events_recorded\": {}, \"events_retained\": {}, \
             \"path_records\": {}}}",
            r.backend.label(),
            r.mode.label(),
            r.packets,
            r.departed,
            r.drops,
            r.elapsed_ns,
            r.pps(),
            r.ratio_vs_off,
            r.events_recorded,
            r.events_retained,
            r.path_records,
        );
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_TELEMETRY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json").to_string()
    });
    std::fs::write(&out, &json).expect("write BENCH_telemetry.json");
    println!("wrote {out}");
}
