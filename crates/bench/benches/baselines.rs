//! Scheduler-vs-baseline benchmarks: the software cost of a programmable
//! PIFO/STFQ port against the fixed-function DRR, strict-priority and
//! FIFO schedulers it replaces.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pifo_algos::{Stfq, WeightTable};
use pifo_core::prelude::*;
use pifo_sim::{run_port, DrrSched, FifoSched, PortConfig, StrictPrioritySched, TreeScheduler};

fn arrivals(n: u64) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(i, FlowId((i % 64) as u32), 1_000, Nanos(i * 100)).with_class((i % 4) as u8)
        })
        .collect()
}

fn bench_port(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_10k_packets");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let n = 10_000u64;
    let cfg = PortConfig::new(10_000_000_000);
    group.throughput(Throughput::Elements(n));

    group.bench_function("pifo_stfq", |b| {
        let pkts = arrivals(n);
        b.iter(|| {
            let mut tb = TreeBuilder::new();
            let root = tb.add_root("wfq", Box::new(Stfq::new(WeightTable::new())));
            let tree = tb.build(Box::new(move |_| root)).expect("valid");
            let mut s = TreeScheduler::new("stfq", tree);
            black_box(run_port(&pkts, &mut s, &cfg));
        })
    });

    group.bench_function("drr", |b| {
        let pkts = arrivals(n);
        b.iter(|| {
            let mut s = DrrSched::new(1_500, 1_000_000);
            black_box(run_port(&pkts, &mut s, &cfg));
        })
    });

    group.bench_function("strict_priority", |b| {
        let pkts = arrivals(n);
        b.iter(|| {
            let mut s = StrictPrioritySched::new(4, 1_000_000);
            black_box(run_port(&pkts, &mut s, &cfg));
        })
    });

    group.bench_function("fifo", |b| {
        let pkts = arrivals(n);
        b.iter(|| {
            let mut s = FifoSched::new(1_000_000);
            black_box(run_port(&pkts, &mut s, &cfg));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_port);
criterion_main!(benches);
