//! X6: the §6.2 lossless-fabric demonstration — PFC pause/resume as a
//! scheduler-level concern, plus the fault watchdog.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_sim::{
    CbrSource, DrainMode, FaultPlan, IncastSource, LosslessConfig, LosslessFabric, PauseAction,
    StallKind, Switch, SwitchBuilder, TrafficSource,
};
use std::fmt::Write as _;

const PORTS: usize = 4;
const RATE_BPS: u64 = 10_000_000_000;
const XOFF: usize = 16;
const XON: usize = 4;
const HEADROOM: usize = 16;

fn classify(p: &Packet) -> usize {
    if p.flow.0 < 64 {
        0
    } else {
        (p.flow.0 as usize - 100) % PORTS
    }
}

fn build_switch() -> Switch {
    let backend = super::backend();
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_shared_pool(
        PORTS * (XOFF + HEADROOM),
        AdmissionPolicy::PortFlow {
            port: Threshold::Static(XOFF + HEADROOM),
            flow: Threshold::Unlimited,
        },
    );
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool)
                .expect("tree")
        });
    }
    sb.build(Box::new(classify))
}

/// An incast hog into port 0 plus one well-behaved victim stream: the
/// closed-loop traffic both demonstrations run.
fn sources() -> Vec<Box<dyn TrafficSource>> {
    vec![
        Box::new(IncastSource::new(
            FlowId(0),
            16,
            1_000,
            8,
            RATE_BPS,
            Nanos(20_000),
            Nanos(300_000),
        )) as Box<dyn TrafficSource>,
        Box::new(CbrSource::new(
            FlowId(101),
            1_000,
            RATE_BPS / 2,
            Nanos::ZERO,
            Nanos(300_000),
        )),
    ]
}

/// X6 — watermark-driven pause/resume absorbs an incast storm with zero
/// loss, and the pause watchdog turns a dead egress port into a typed
/// stall instead of a hang.
pub fn pfc() -> String {
    let cfg = LosslessConfig::new(XOFF, XON).with_headroom(HEADROOM);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "X6 (Sec 6.2): PFC backpressure on the shared-buffer fabric"
    );
    let _ = writeln!(
        s,
        "fabric: {PORTS} ports @ {} Gbit/s, xoff={XOFF} xon={XON} headroom={HEADROOM}, \
         pool={} (ports x (xoff+headroom))",
        RATE_BPS / 1_000_000_000,
        cfg.min_pool_capacity(PORTS)
    );

    // --- healthy run: the storm is paced, not dropped -------------------
    let mut fabric = LosslessFabric::new(build_switch(), cfg);
    let run = fabric.run(sources(), DrainMode::Batched);
    assert!(run.stall.is_none(), "healthy run stalled: {:?}", run.stall);
    assert_eq!(run.total_drops(), 0, "lossless contract");
    let _ = writeln!(s, "\nincast storm (16 senders, 8x drain rate) -> port 0:");
    let _ = writeln!(
        s,
        "  departures={}  drops={}  pauses={}  resumes={}  peak_pool={}  peak_skid={}",
        run.total_departures(),
        run.total_drops(),
        run.count_events(PauseAction::Pause),
        run.count_events(PauseAction::Resume),
        run.max_pool_live,
        run.peak_skid[0],
    );
    let _ = writeln!(
        s,
        "  hog source: paused {}x, {} total, longest {}",
        run.sources[0].pauses, run.sources[0].total_paused, run.sources[0].max_pause,
    );
    let _ = writeln!(
        s,
        "  victim source: paused {}x (backpressure is per port x class)",
        run.sources[1].pauses,
    );

    // --- fault run: dead egress port -> typed stall ---------------------
    let cfg = cfg.with_max_pause(Nanos::from_micros(200));
    let mut fabric = LosslessFabric::new(build_switch(), cfg);
    let faults = FaultPlan::none().dead_port(0);
    let run = fabric.run_with_faults(sources(), DrainMode::Batched, &faults);
    let stall = run.stall.expect("a dead port under load must stall");
    assert!(matches!(stall.kind, StallKind::DeadPort { port: 0 }));
    let _ = writeln!(s, "\nfault injection: port 0 transmitter killed:");
    let _ = writeln!(s, "  watchdog verdict: {stall}");
    let _ = writeln!(
        s,
        "  victim port kept transmitting: {} departures (fault contained)",
        run.run.ports[1].departures.len(),
    );
    s
}
