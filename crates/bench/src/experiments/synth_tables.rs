//! T1 / T2 / W / F9: synthesis tables and mesh compilation.

use pifo_compiler::{compile, MeshLayout, TreeSpec};
use pifo_hw::BlockConfig;
use std::fmt::Write as _;

/// Table 1 at the paper's baseline configuration.
pub fn table1() -> String {
    pifo_synth::render_table1(&BlockConfig::default())
}

/// Table 2: the flow-count sweep.
pub fn table2() -> String {
    pifo_synth::render_table2()
}

/// §5.4 wiring analysis for the 5-block mesh.
pub fn wiring() -> String {
    pifo_synth::render_wiring(&BlockConfig::default(), 5)
}

/// Figs 10b/11b plus the 5-level layout.
pub fn compile_figs() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== HPFQ (Fig 10b) ==");
    s.push_str(&compile(&TreeSpec::hpfq()).expect("valid").render());
    let _ = writeln!(s, "\n== Hierarchies with Shaping (Fig 11b) ==");
    s.push_str(
        &compile(&TreeSpec::hierarchies_with_shaping())
            .expect("valid")
            .render(),
    );
    let _ = writeln!(s, "\n== 5-level hierarchy (Sec 1 headline) ==");
    let layout = compile(&TreeSpec::linear(5)).expect("valid");
    s.push_str(&layout.render());
    let cfg = BlockConfig::default();
    let _ = writeln!(
        s,
        "wiring: {} bits/set, {} bits total",
        MeshLayout::wire_set_bits(&cfg),
        layout.total_wiring_bits(&cfg)
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render() {
        assert!(super::table1().contains("PIFO block"));
        assert!(super::table2().contains("4096"));
        assert!(super::wiring().contains("2120"));
        assert!(super::compile_figs().contains("WFQ_Root"));
    }
}
