//! F6 / F7: delay-oriented experiments — LSTF across a multi-hop path
//! and Stop-and-Go framing.

use pifo_algos::{Fifo, Lstf, StopAndGo};
use pifo_core::prelude::*;
use pifo_sim::{
    latency_stats, run_pipeline, run_port, Hop, OnOffSource, PoissonSource, PortConfig,
    PortScheduler, TrafficSource, TreeScheduler,
};
use std::fmt::Write as _;

fn single_node_tree(tx: Box<dyn SchedulingTransaction>, limit: usize) -> ScheduleTree {
    let mut b = super::tree_builder();
    let root = b.add_root("q", tx);
    b.buffer_limit(limit);
    b.build(Box::new(move |_| root)).expect("valid")
}

/// F6 — LSTF (Fig 6): a deadline-bearing flow crosses 3 switches sharing
/// each hop with heavy cross-traffic. LSTF spends slack where it is
/// needed; FIFO queues indiscriminately. We compare the urgent flow's
/// end-to-end p99 delay.
pub fn lstf() -> String {
    const RATE: u64 = 10_000_000_000;
    let end = Nanos::from_millis(20);

    // The urgent flow: 100 Mb/s of 500 B packets with a 60 us slack
    // budget for the whole path.
    let urgent_packets = |seed: u64| -> Vec<Packet> {
        let mut src = PoissonSource::new(FlowId(1), 500, 25_000.0, end, seed);
        let mut v: Vec<Packet> = std::iter::from_fn(move || src.next_packet()).collect();
        for p in v.iter_mut() {
            p.slack = 60_000; // 60 us
        }
        v
    };
    // Cross traffic per hop: ~8.4 Gb/s of 1500 B packets, generous slack
    // (10 ms) — background that can afford to wait.
    let cross = |hop: u64, base_id: u64| -> Vec<Packet> {
        let mut src = PoissonSource::new(FlowId(100 + hop as u32), 1_500, 700_000.0, end, 7 + hop);
        let mut v: Vec<Packet> = std::iter::from_fn(move || src.next_packet()).collect();
        for (i, p) in v.iter_mut().enumerate() {
            p.slack = 10_000_000;
            p.id = PacketId(base_id + i as u64);
        }
        v
    };

    let run = |sched_for_hop: &dyn Fn() -> Box<dyn PortScheduler>, charge: bool| -> Vec<u64> {
        let mut main = urgent_packets(42);
        for (i, p) in main.iter_mut().enumerate() {
            p.id = PacketId(i as u64);
        }
        let hops: Vec<Hop> = (0..3u64)
            .map(|h| Hop {
                scheduler: sched_for_hop(),
                cross_traffic: cross(h, 1_000_000 * (h + 1)),
                prop_delay: Nanos(1_000),
            })
            .collect();
        let mut cfg = PortConfig::new(RATE).with_horizon(end);
        if charge {
            cfg = cfg.with_lstf_charging();
        }
        let res = run_pipeline(main, hops, &cfg);
        res.e2e_delay.values().copied().collect()
    };

    let lstf_delays = run(
        &|| {
            Box::new(TreeScheduler::new(
                "LSTF",
                single_node_tree(Box::new(Lstf), 100_000),
            ))
        },
        true,
    );
    let fifo_delays = run(
        &|| {
            Box::new(TreeScheduler::new(
                "FIFO",
                single_node_tree(Box::new(Fifo), 100_000),
            ))
        },
        false,
    );

    let ls = latency_stats(&lstf_delays).expect("packets delivered");
    let fs = latency_stats(&fifo_delays).expect("packets delivered");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F6 (Fig 6) LSTF: urgent flow (60 us slack) over 3 hops vs ~84% cross load"
    );
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "scheduler", "pkts", "mean us", "p50 us", "p99 us", "max us"
    );
    for (name, st) in [("LSTF", &ls), ("FIFO", &fs)] {
        let _ = writeln!(
            s,
            "{:<10} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            name,
            st.count,
            st.mean_ns / 1e3,
            st.p50_ns as f64 / 1e3,
            st.p99_ns as f64 / 1e3,
            st.max_ns as f64 / 1e3
        );
    }
    let _ = writeln!(
        s,
        "p99 improvement: {:.1}x (paper claim: slack scheduling cuts tail delays [16])",
        fs.p99_ns as f64 / ls.p99_ns as f64
    );
    s
}

/// F7 — Stop-and-Go (Fig 7): bursty traffic through frame-based shaping
/// departs only at frame boundaries, bounded delay, burstiness removed.
pub fn stopgo() -> String {
    const RATE: u64 = 1_000_000_000; // 1 Gb/s
    let end = Nanos::from_millis(20);
    let frame = Nanos(100_000); // 100 us frames

    // Bursty source: 10 packets back-to-back at line rate, then idle.
    let arrivals = || -> Vec<Packet> {
        let mut src = OnOffSource::new(FlowId(1), 1_000, 10, RATE, Nanos(400_000), end);
        let mut v: Vec<Packet> = std::iter::from_fn(move || src.next_packet()).collect();
        pifo_sim::renumber(&mut v);
        v
    };

    // Stop-and-Go = a FIFO leaf whose shaper stamps frame-end release
    // times; root FIFO.
    let make_sg_tree = || -> ScheduleTree {
        let mut b = super::tree_builder();
        let root = b.add_root("root", Box::new(Fifo));
        let leaf = b.add_child(root, "framed", Box::new(Fifo));
        b.set_shaper(leaf, Box::new(StopAndGo::new(frame)));
        b.build(Box::new(move |_| leaf)).expect("valid")
    };

    let cfg = PortConfig::new(RATE).with_horizon(end);
    let mut sg = TreeScheduler::new("StopAndGo", make_sg_tree());
    let deps_sg = run_port(&arrivals(), &mut sg, &cfg);
    let mut fifo = pifo_sim::FifoSched::new(100_000);
    let deps_fifo = run_port(&arrivals(), &mut fifo, &cfg);

    // Departure alignment: offset of transmission start within its frame.
    let max_start_offset = deps_sg
        .iter()
        .map(|d| d.start.as_nanos() % frame.as_nanos())
        .max()
        .unwrap_or(0);
    // Shaping delay bound: start - arrival <= 2T (one frame of holding +
    // serialization within the next frame).
    let max_delay = deps_sg
        .iter()
        .map(|d| (d.start - d.packet.arrival).as_nanos())
        .max()
        .unwrap_or(0);

    // The framing property: a packet arriving in frame k departs in
    // frame k+1 — every packet, no exceptions (Fig 7's invariant).
    let framed_correctly = deps_sg
        .iter()
        .filter(|d| {
            let arr_frame = d.packet.arrival.as_nanos() / frame.as_nanos();
            let dep_frame = d.start.as_nanos() / frame.as_nanos();
            dep_frame == arr_frame + 1
        })
        .count();
    // FIFO departs in the arrival frame (no smoothing/alignment).
    let fifo_same_frame = deps_fifo
        .iter()
        .filter(|d| {
            d.start.as_nanos() / frame.as_nanos() == d.packet.arrival.as_nanos() / frame.as_nanos()
        })
        .count();

    let mut s = String::new();
    let _ = writeln!(
        s,
        "F7 (Fig 7) Stop-and-Go: bursts of 10 pkts, T = {} us frames, 1 Gb/s",
        frame.as_nanos() / 1000
    );
    let _ = writeln!(
        s,
        "packets delivered: {} (FIFO: {})",
        deps_sg.len(),
        deps_fifo.len()
    );
    let _ = writeln!(
        s,
        "framing invariant (arrive frame k -> depart frame k+1): {}/{} packets",
        framed_correctly,
        deps_sg.len()
    );
    let _ = writeln!(
        s,
        "FIFO departs in the arrival frame for {}/{} packets (no framing)",
        fifo_same_frame,
        deps_fifo.len()
    );
    let _ = writeln!(
        s,
        "max departure offset within frame: {:.1} us (transmissions start at frame boundaries)",
        max_start_offset as f64 / 1e3
    );
    let _ = writeln!(
        s,
        "max shaping delay: {:.1} us — bound 2T = {:.1} us (paper: bounded delay)",
        max_delay as f64 / 1e3,
        2.0 * frame.as_nanos() as f64 / 1e3
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn stopgo_runs_and_bounds_delay() {
        let out = super::stopgo();
        assert!(out.contains("max shaping delay"));
    }
}
