//! X1 — §3.5: the pFabric counterexample, executed.
//!
//! pFabric transmits the *earliest* packet of the flow with the shortest
//! remaining processing time; an arrival can therefore re-prioritise all
//! buffered packets of its flow. A PIFO only positions the arriving
//! element. We replay the paper's exact 4-packet sequence against both.

use pifo_algos::Srpt;
use pifo_core::prelude::*;
use pifo_sim::PFabricQueue;
use std::fmt::Write as _;

fn pkt(id: u64, flow: u32, remaining: u64) -> Packet {
    Packet::new(id, FlowId(flow), 100, Nanos(id)).with_remaining(remaining)
}

/// Run the §3.5 sequence through the pFabric reference and a PIFO
/// programmed with the SRPT transaction.
pub fn pfabric() -> String {
    // The paper's labels: p0(7); p1(9), p1(8); then p1(6) arrives.
    let seq = [pkt(0, 0, 7), pkt(1, 1, 9), pkt(2, 1, 8), pkt(3, 1, 6)];
    let label = |p: &Packet| format!("p{}({})", p.flow.0, p.remaining);

    // pFabric reference.
    let mut pf = PFabricQueue::new();
    for p in &seq {
        pf.enqueue(p.clone());
    }
    let pf_order: Vec<String> = std::iter::from_fn(|| pf.dequeue())
        .map(|p| label(&p))
        .collect();

    // PIFO + SRPT transaction.
    let mut b = super::tree_builder();
    let root = b.add_root("SRPT", Box::new(Srpt));
    let mut tree = b.build(Box::new(move |_| root)).expect("valid");
    for p in &seq {
        tree.enqueue(p.clone(), p.arrival).expect("enqueue");
    }
    let pifo_order: Vec<String> = std::iter::from_fn(|| tree.dequeue(Nanos(100)))
        .map(|p| label(&p))
        .collect();

    let mut s = String::new();
    let _ = writeln!(
        s,
        "X1 (Sec 3.5): pFabric's wholesale reordering is beyond a PIFO"
    );
    let _ = writeln!(s, "arrivals: p0(7), p1(9), p1(8), then p1(6)");
    let _ = writeln!(s, "pFabric reference: {}", pf_order.join(", "));
    let _ = writeln!(s, "   (paper's order:  p1(9), p1(8), p1(6), p0(7))");
    let _ = writeln!(s, "PIFO with SRPT:    {}", pifo_order.join(", "));
    let _ = writeln!(
        s,
        "the PIFO cannot move the already-buffered p1(9), p1(8) ahead of p0(7):\nonly the arriving element chooses its own position (Sec 3.5)"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn orders_differ_exactly_as_documented() {
        let out = super::pfabric();
        assert!(out.contains("p1(9), p1(8), p1(6), p0(7)"));
    }
}
