//! X7: the observability tour — flight-recorder event tracing,
//! INT-style per-packet path records, and time-series gauges on the
//! shared-buffer fabric, with the "observes, never steers" contract
//! checked inline.

use pifo_algos::Stfq;
use pifo_core::prelude::*;
use pifo_core::telemetry::EventKind;
use pifo_sim::{DrainMode, Switch, SwitchBuilder};
use std::fmt::Write as _;

const PORTS: usize = 4;
const RATE_BPS: u64 = 10_000_000_000;
const POOL: usize = 256;

fn build_switch(telemetry: Option<TelemetryConfig>) -> Switch {
    let backend = super::backend();
    let mut sb = SwitchBuilder::new(RATE_BPS);
    sb.with_burst(16);
    sb.with_shared_pool(POOL, AdmissionPolicy::DynamicThreshold { num: 1, den: 1 });
    if let Some(cfg) = telemetry {
        sb.with_telemetry(cfg);
    }
    for _ in 0..PORTS {
        sb.add_shared_port(|pool| {
            let mut b = TreeBuilder::new();
            b.with_backend(backend);
            let root = b.add_root("stfq", Box::new(Stfq::unweighted()));
            b.build_in_pool(Box::new(move |_| root), pool)
                .expect("tree")
        });
    }
    sb.build(Box::new(|p: &Packet| p.flow.0 as usize % PORTS))
}

/// A bursty deterministic workload: 32 flows, 3 waves of 256 packets,
/// enough to overrun the pool and exercise the drop path.
fn arrivals() -> Vec<Packet> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for wave in 0..3u64 {
        for k in 0..256u64 {
            out.push(Packet::new(
                id,
                FlowId((k % 32) as u32),
                1_000,
                Nanos(wave * 50_000),
            ));
            id += 1;
        }
    }
    out
}

/// X7 — one run with full telemetry: event taxonomy, path records
/// joined against departures, sampled gauges, and the JSON snapshot.
pub fn tour() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "X7 (observability): flight recorder + path records + gauges on a \
         {PORTS}-port shared-pool fabric"
    );

    // Reference run with telemetry off, to check the contract inline.
    let mut plain = build_switch(None);
    let base = plain.run(&arrivals(), DrainMode::Batched);

    // Sample gauges every 2 rounds — this demo run is only a few dozen
    // rounds long, so the default stride would miss it entirely.
    let mut cfg = TelemetryConfig::with_paths();
    cfg.sample_every = 2;
    let mut sw = build_switch(Some(cfg));
    let run = sw.run(&arrivals(), DrainMode::Batched);
    let snap = sw.telemetry_snapshot(&run).expect("telemetry enabled");

    for (a, b) in base.ports.iter().zip(&run.ports) {
        assert_eq!(
            a.departures, b.departures,
            "telemetry observes, never steers"
        );
        assert_eq!(a.drops, b.drops);
    }
    let _ = writeln!(
        s,
        "contract: departure traces bit-identical with telemetry on vs off (checked)"
    );

    let _ = writeln!(
        s,
        "\nworkload: {} packets, {} departed, {} dropped",
        768,
        run.total_departures(),
        run.total_drops()
    );

    // --- the flight recorder ------------------------------------------
    let _ = writeln!(
        s,
        "\nflight recorder: {} events recorded, {} retained in the rings",
        snap.events_recorded,
        snap.events.len()
    );
    let _ = writeln!(s, "{:>16} {:>8}", "event kind", "count");
    for kind in EventKind::ALL {
        let n = snap.count(kind);
        if n > 0 {
            let _ = writeln!(s, "{:>16} {:>8}", kind.label(), n);
        }
    }
    if let Some(last) = snap.events.last() {
        let _ = writeln!(
            s,
            "last event: {} at t={} on port {} (flow {})",
            last.kind.label(),
            last.time,
            last.port,
            last.flow.0
        );
    }

    // --- per-packet path records --------------------------------------
    let with_paths: Vec<_> = run.ports.iter().filter(|p| !p.paths.is_empty()).collect();
    let _ = writeln!(
        s,
        "\npath records: {} (one per departure)",
        run.ports.iter().map(|p| p.paths.len()).sum::<usize>()
    );
    if let Some(port) = with_paths.first() {
        // The record reconciles with the departure it is aligned to.
        let (rec, dep) = (&port.paths[0], &port.departures[0]);
        assert_eq!(rec.wait(), dep.wait, "telemetry wait == departure wait");
        let _ = writeln!(
            s,
            "sample: packet {} flow {} — enqueued t={}, departed t={}, wait {} \
             (== departure wait), {} hop(s):",
            rec.packet,
            rec.flow.0,
            rec.enqueued,
            rec.departed,
            rec.wait(),
            rec.hops().len()
        );
        for hop in rec.hops() {
            let _ = writeln!(
                s,
                "  node {}: rank {}, queue depth {} at enqueue",
                hop.node, hop.rank, hop.depth
            );
        }
    }

    // --- gauges --------------------------------------------------------
    let _ = writeln!(s, "\ngauges ({} series):", snap.gauges.len());
    let _ = writeln!(
        s,
        "{:<24} {:>8} {:>8} {:>8}",
        "series", "samples", "peak", "last"
    );
    for g in &snap.gauges {
        let peak = g.points.iter().map(|p| p.value).max().unwrap_or(0);
        let last = g.points.last().map(|p| p.value).unwrap_or(0);
        let _ = writeln!(
            s,
            "{:<24} {:>8} {:>8} {:>8}",
            g.name,
            g.points.len(),
            peak,
            last
        );
    }

    // --- the snapshot export ------------------------------------------
    let json = snap.to_json();
    let _ = writeln!(
        s,
        "\nsnapshot: {} bytes of schema `pifo-telemetry-v1` JSON \
         (TelemetrySnapshot::to_json)",
        json.len()
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tour_runs_and_reconciles() {
        let out = super::tour();
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("pifo-telemetry-v1"), "{out}");
    }
}
