//! Experiment registry: one function per paper table/figure.
//!
//! Experiments that build scheduling trees do so through
//! [`tree_builder`] (or the `*_with_backend` constructors of
//! `pifo-algos`), so the whole suite can be re-run on any PIFO queue
//! engine: the `repro` binary's `--backend` flag (any name in
//! [`BACKEND_NAMES`](pifo_core::pifo::BACKEND_NAMES), parsed by
//! `pifo_bench::cli`) calls [`set_backend`] before dispatching. For the
//! *exact* engines, backend choice never changes the results (they are
//! observationally equivalent — enforced by the differential property
//! suites); running the suite per backend in CI catches engine
//! regressions at experiment scale. The approximate engines (`sp-pifo`,
//! `rifo`, `aifo`) legally reorder departures, so their experiment
//! output is a measurement, not a golden trace.

use pifo_core::prelude::*;
use std::sync::Mutex;

pub mod fairness;
pub mod fct;
pub mod hwdemo;
pub mod language;
pub mod latency;
pub mod limits;
pub mod lossless;
pub mod synth_tables;
pub mod telemetry;

/// Which PIFO backend experiment trees are built with. A `Mutex` rather
/// than an atomic index into [`PifoBackend::ALL`]: parameterised
/// selectors like `sp-pifo:4` are not members of the canonical array,
/// so the value itself must be stored.
static BACKEND: Mutex<PifoBackend> = Mutex::new(PifoBackend::SortedArray);

/// Select the PIFO queue engine used by every subsequently-run
/// experiment that builds a scheduling tree.
pub fn set_backend(backend: PifoBackend) {
    *BACKEND.lock().expect("backend lock poisoned") = backend;
}

/// The currently selected experiment backend (default: the reference
/// sorted array).
pub fn backend() -> PifoBackend {
    *BACKEND.lock().expect("backend lock poisoned")
}

/// A `TreeBuilder` pre-configured with the selected backend — every
/// experiment that assembles a tree by hand starts from this.
pub fn tree_builder() -> TreeBuilder {
    let mut b = TreeBuilder::new();
    b.with_backend(backend());
    b
}

/// One experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// All experiments: `(id, description, runner)`.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "table1",
            "Table 1: mesh area breakdown",
            synth_tables::table1 as fn() -> String,
        ),
        (
            "table2",
            "Table 2: flow-scheduler area & timing vs #flows",
            synth_tables::table2,
        ),
        (
            "wiring",
            "Sec 5.4: full-mesh wiring bits",
            synth_tables::wiring,
        ),
        (
            "compile",
            "Figs 10-11: tree -> mesh compilation",
            synth_tables::compile_figs,
        ),
        (
            "fig2",
            "Fig 2: PIFO tree encodes scheduling order",
            hwdemo::fig2,
        ),
        (
            "stfq",
            "Fig 1: STFQ weighted fairness vs GPS & DRR",
            fairness::stfq,
        ),
        (
            "hpfq",
            "Fig 3: HPFQ hierarchical shares (vs flat WFQ)",
            fairness::hpfq,
        ),
        (
            "shaping",
            "Fig 4: Hierarchies with Shaping (10 Mbit/s cap)",
            fairness::shaping,
        ),
        (
            "minrate",
            "Fig 8: min-rate guarantees (2-level vs collapsed)",
            fairness::minrate,
        ),
        (
            "buffers",
            "Sec 6.1: buffer thresholds fix tail-drop lockout",
            fairness::buffers,
        ),
        (
            "lstf",
            "Fig 6: LSTF tail latency across 3 hops",
            latency::lstf,
        ),
        (
            "stopgo",
            "Fig 7: Stop-and-Go framing & delay bound",
            latency::stopgo,
        ),
        (
            "srpt",
            "Sec 1/3.4: SRPT/SJF vs FIFO flow completion times",
            fct::srpt,
        ),
        (
            "block",
            "Fig 12-13: PIFO block at Trident scale",
            hwdemo::block,
        ),
        (
            "conflicts",
            "Sec 4.3: shaping conflicts & 1.25x overclock",
            hwdemo::conflicts,
        ),
        (
            "fivelevel",
            "Sec 1: 5-level programmable hierarchy on the mesh",
            hwdemo::fivelevel,
        ),
        (
            "pfabric",
            "Sec 3.5: the pFabric inexpressibility counterexample",
            limits::pfabric,
        ),
        (
            "domino",
            "Sec 4.1: transactions -> atom pipelines",
            language::domino,
        ),
        (
            "pfc",
            "Sec 6.2: lossless fabric — PFC pause/resume & fault watchdog",
            lossless::pfc,
        ),
        (
            "telemetry",
            "Observability: flight recorder, path records, gauges",
            telemetry::tour,
        ),
    ]
}

/// Run one experiment by id.
pub fn run(id: &str) -> Option<String> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}
