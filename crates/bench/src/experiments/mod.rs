//! Experiment registry: one function per paper table/figure.

pub mod fairness;
pub mod fct;
pub mod hwdemo;
pub mod language;
pub mod latency;
pub mod limits;
pub mod synth_tables;

/// One experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// All experiments: `(id, description, runner)`.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "table1",
            "Table 1: mesh area breakdown",
            synth_tables::table1 as fn() -> String,
        ),
        (
            "table2",
            "Table 2: flow-scheduler area & timing vs #flows",
            synth_tables::table2,
        ),
        (
            "wiring",
            "Sec 5.4: full-mesh wiring bits",
            synth_tables::wiring,
        ),
        (
            "compile",
            "Figs 10-11: tree -> mesh compilation",
            synth_tables::compile_figs,
        ),
        (
            "fig2",
            "Fig 2: PIFO tree encodes scheduling order",
            hwdemo::fig2,
        ),
        (
            "stfq",
            "Fig 1: STFQ weighted fairness vs GPS & DRR",
            fairness::stfq,
        ),
        (
            "hpfq",
            "Fig 3: HPFQ hierarchical shares (vs flat WFQ)",
            fairness::hpfq,
        ),
        (
            "shaping",
            "Fig 4: Hierarchies with Shaping (10 Mbit/s cap)",
            fairness::shaping,
        ),
        (
            "minrate",
            "Fig 8: min-rate guarantees (2-level vs collapsed)",
            fairness::minrate,
        ),
        (
            "buffers",
            "Sec 6.1: buffer thresholds fix tail-drop lockout",
            fairness::buffers,
        ),
        (
            "lstf",
            "Fig 6: LSTF tail latency across 3 hops",
            latency::lstf,
        ),
        (
            "stopgo",
            "Fig 7: Stop-and-Go framing & delay bound",
            latency::stopgo,
        ),
        (
            "srpt",
            "Sec 1/3.4: SRPT/SJF vs FIFO flow completion times",
            fct::srpt,
        ),
        (
            "block",
            "Fig 12-13: PIFO block at Trident scale",
            hwdemo::block,
        ),
        (
            "conflicts",
            "Sec 4.3: shaping conflicts & 1.25x overclock",
            hwdemo::conflicts,
        ),
        (
            "fivelevel",
            "Sec 1: 5-level programmable hierarchy on the mesh",
            hwdemo::fivelevel,
        ),
        (
            "pfabric",
            "Sec 3.5: the pFabric inexpressibility counterexample",
            limits::pfabric,
        ),
        (
            "domino",
            "Sec 4.1: transactions -> atom pipelines",
            language::domino,
        ),
    ]
}

/// Run one experiment by id.
pub fn run(id: &str) -> Option<String> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}
