//! F1 / F3 / F4 / F8: fairness and rate-control experiments.
//!
//! These regenerate the behavioural claims of Figures 1, 3, 4 and 8 on a
//! simulated 10 Gbit/s output port with deterministic CBR workloads.

use pifo_algos::{
    build_min_rate_tree_with_backend, fig3_hpfq_with_backend, MinRateGuarantee, Stfq,
    TokenBucketFilter, WeightTable,
};
use pifo_core::prelude::*;
use pifo_sim::{
    run_port, throughput, CbrSource, Departure, DrrSched, FifoSched, FluidGps, PortConfig,
    TrafficSource, TreeScheduler,
};
use std::fmt::Write as _;

const GBIT10: u64 = 10_000_000_000;
const PKT: u32 = 1_500;

/// Backlogged CBR arrivals for `flows`, each offered at `offered_bps`,
/// over `[0, end)`.
fn cbr_arrivals(flows: &[u32], offered_bps: u64, end: Nanos) -> Vec<Packet> {
    let mut sources: Vec<Box<dyn TrafficSource>> = Vec::new();
    for &f in flows {
        sources.push(Box::new(CbrSource::new(
            FlowId(f),
            PKT,
            offered_bps,
            Nanos::ZERO,
            end,
        )));
    }
    let mut pkts = pifo_sim::merge(sources);
    pifo_sim::renumber(&mut pkts);
    pkts
}

fn stfq_tree_with(backend: PifoBackend, weights: WeightTable, limit: usize) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    // Tracking is only wired up where it can be non-zero: an exact
    // root pops in rank order by contract.
    b.track_inversions(!backend.is_exact());
    let root = b.add_root("WFQ", Box::new(Stfq::new(weights)));
    b.buffer_limit(limit);
    b.build(Box::new(move |_| root)).expect("valid tree")
}

fn single_stfq_tree(weights: WeightTable, limit: usize) -> ScheduleTree {
    stfq_tree_with(super::backend(), weights, limit)
}

fn rate_mbps(deps: &[Departure], flow: u32, from: Nanos, to: Nanos) -> f64 {
    throughput(deps, from, to).rate_bps(FlowId(flow)) / 1e6
}

/// F1 — STFQ gives weighted max-min shares; compare the PIFO scheduler
/// against the fluid GPS ideal and the DRR line-rate approximation.
pub fn stfq() -> String {
    let end = Nanos::from_millis(10);
    let weights = [(1u32, 1u64), (2, 2), (3, 4)];
    let arrivals = cbr_arrivals(&[1, 2, 3], GBIT10, end); // 3x oversubscribed

    // PIFO/STFQ.
    let table = WeightTable::from_pairs(weights.iter().map(|&(f, w)| (FlowId(f), w)));
    // Buffers sized so every flow stays backlogged: buffer management
    // is orthogonal to scheduling (Sec 6.1); per-flow thresholds would
    // prevent tail-drop lockout in a real switch.
    let mut pifo = TreeScheduler::new("STFQ", single_stfq_tree(table, 100_000));
    let cfg = PortConfig::new(GBIT10).with_horizon(end);
    let deps_pifo = run_port(&arrivals, &mut pifo, &cfg);

    // DRR baseline with proportional quanta.
    let mut drr = DrrSched::new(1_500, 100_000);
    for &(f, w) in &weights {
        drr.set_quantum(FlowId(f), 1_500 * w);
    }
    let deps_drr = run_port(&arrivals, &mut drr, &cfg);

    // Fluid GPS ground truth.
    let mut gps = FluidGps::new(GBIT10);
    for &(f, w) in &weights {
        gps.set_weight(FlowId(f), w);
    }
    for p in &arrivals {
        gps.arrive(p.flow, p.length as u64, p.arrival);
    }
    gps.advance_to(end);

    // Measure the second half (steady state).
    let (lo, hi) = (Nanos::from_millis(5), end);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F1 (Fig 1) STFQ: 3 backlogged flows, weights 1:2:4, 10 Gbit/s link"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "flow", "weight", "ideal Mb/s", "STFQ Mb/s", "DRR Mb/s", "GPS bytes"
    );
    let wsum: u64 = weights.iter().map(|&(_, w)| w).sum();
    let mut shares = Vec::new();
    for &(f, w) in &weights {
        let ideal = 10_000.0 * w as f64 / wsum as f64;
        let got = rate_mbps(&deps_pifo, f, lo, hi);
        let drr_got = rate_mbps(&deps_drr, f, lo, hi);
        shares.push(got / w as f64);
        let _ = writeln!(
            s,
            "{:>6} {:>7} {:>12.0} {:>12.0} {:>12.0} {:>12}",
            f,
            w,
            ideal,
            got,
            drr_got,
            gps.served_bytes(FlowId(f))
        );
    }
    let jain = pifo_sim::jain_index(&shares);
    let _ = writeln!(
        s,
        "Jain index of weight-normalised STFQ shares: {jain:.4} (1.0 = ideal)"
    );

    // Approximate engines legally reorder: quantify the cost against the
    // exact reference on the identical workload (PR 7's open sweep).
    let backend = super::backend();
    if !backend.is_exact() {
        let table = WeightTable::from_pairs(weights.iter().map(|&(f, w)| (FlowId(f), w)));
        let mut exact = TreeScheduler::new(
            "STFQ-exact",
            stfq_tree_with(PifoBackend::SortedArray, table, 100_000),
        );
        let deps_exact = run_port(&arrivals, &mut exact, &cfg);
        let mut exact_shares = Vec::new();
        let _ = writeln!(
            s,
            "\napproximate backend `{backend}` vs exact reference (same workload):"
        );
        let _ = writeln!(
            s,
            "{:>6} {:>12} {:>12} {:>12}",
            "flow", "approx Mb/s", "exact Mb/s", "delta Mb/s"
        );
        for &(f, w) in &weights {
            let approx_rate = rate_mbps(&deps_pifo, f, lo, hi);
            let exact_rate = rate_mbps(&deps_exact, f, lo, hi);
            exact_shares.push(exact_rate / w as f64);
            let _ = writeln!(
                s,
                "{:>6} {:>12.0} {:>12.0} {:>12.1}",
                f,
                approx_rate,
                exact_rate,
                approx_rate - exact_rate
            );
        }
        let jain_exact = pifo_sim::jain_index(&exact_shares);
        let _ = writeln!(
            s,
            "Jain index: approx {jain:.4} vs exact {jain_exact:.4} (delta {:+.4})",
            jain - jain_exact
        );
        if let Some(inv) = pifo.tree().inversion_stats() {
            let _ = writeln!(
                s,
                "rank inversions at the root: {}/{} dequeues ({:.2}%), \
                 mean displacement {:.2}, max rank regression {}",
                inv.inversions,
                inv.dequeues,
                100.0 * inv.inversions as f64 / inv.dequeues.max(1) as f64,
                inv.mean_displacement(),
                inv.max_regression
            );
        }
    }
    s
}

/// F3 — HPFQ on the Fig 3 hierarchy; phase 2 stops flow C to show that
/// freed bandwidth stays *within the class* (unlike flat WFQ).
///
/// C sends at 3 Gbit/s (below its 3.6 Gbit/s fair share) so that it holds
/// no backlog when it stops — making phase 2 a clean before/after.
pub fn hpfq() -> String {
    let end = Nanos::from_millis(10);
    let stop_c = Nanos::from_millis(5);

    // Arrivals: A,B,D saturate; C sends 3 Gb/s and stops at 5 ms.
    let sources: Vec<Box<dyn TrafficSource>> = vec![
        Box::new(CbrSource::new(FlowId(0), PKT, GBIT10, Nanos::ZERO, end)),
        Box::new(CbrSource::new(FlowId(1), PKT, GBIT10, Nanos::ZERO, end)),
        Box::new(CbrSource::new(
            FlowId(2),
            PKT,
            3_000_000_000,
            Nanos::ZERO,
            stop_c,
        )),
        Box::new(CbrSource::new(FlowId(3), PKT, GBIT10, Nanos::ZERO, end)),
    ];
    let mut arrivals = pifo_sim::merge(sources);
    pifo_sim::renumber(&mut arrivals);

    let cfg = PortConfig::new(GBIT10).with_horizon(end);

    // HPFQ per Fig 3.
    let (tree, _) = fig3_hpfq_with_backend(super::backend());
    let mut hpfq = TreeScheduler::new("HPFQ", tree);
    let deps_h = run_port(&arrivals, &mut hpfq, &cfg);

    // Flat WFQ with the composite weights 3:7:36:54 (same static shares).
    let flat = WeightTable::from_pairs([
        (FlowId(0), 3),
        (FlowId(1), 7),
        (FlowId(2), 36),
        (FlowId(3), 54),
    ]);
    let mut wfq = TreeScheduler::new("flat-WFQ", single_stfq_tree(flat, 100_000));
    let deps_f = run_port(&arrivals, &mut wfq, &cfg);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "F3 (Fig 3) HPFQ: Left:Right 1:9, A:B 3:7, C:D 4:6, 10 Gbit/s"
    );
    let _ = writeln!(
        s,
        "phase 1 (1-4 ms; C sends 3 Gb/s, D absorbs Right's slack) — % of link"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>12} {:>12}",
        "flow", "HPFQ-ideal", "HPFQ", "flat-WFQ"
    );
    let p1 = (Nanos::from_millis(1), Nanos::from_millis(4));
    for (f, ideal) in [(0u32, 3.0), (1, 7.0), (2, 30.0), (3, 60.0)] {
        let _ = writeln!(
            s,
            "{:>6} {:>12.1} {:>12.1} {:>12.1}",
            f,
            ideal,
            rate_mbps(&deps_h, f, p1.0, p1.1) / 100.0,
            rate_mbps(&deps_f, f, p1.0, p1.1) / 100.0,
        );
    }
    let _ = writeln!(
        s,
        "phase 2 (C idle, 6-10 ms) — hierarchy keeps C's share inside Right"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>12} {:>12}",
        "flow", "HPFQ-ideal", "HPFQ", "flat-WFQ"
    );
    let p2 = (Nanos::from_millis(6), end);
    for (f, ideal) in [(0u32, 3.0), (1, 7.0), (3, 90.0)] {
        let _ = writeln!(
            s,
            "{:>6} {:>12.1} {:>12.1} {:>12.1}",
            f,
            ideal,
            rate_mbps(&deps_h, f, p2.0, p2.1) / 100.0,
            rate_mbps(&deps_f, f, p2.0, p2.1) / 100.0,
        );
    }
    let _ = writeln!(
        s,
        "(flat WFQ gives D only 54/64 = 84.4% in phase 2 — the hierarchy is not expressible flat)"
    );
    s
}

/// F4 — Hierarchies with Shaping: Right is rate-limited to 10 Mbit/s
/// regardless of offered load.
pub fn shaping() -> String {
    let end = Nanos::from_millis(40);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F4 (Fig 4) Hierarchies with Shaping: TBF on Right (10 Mbit/s, 15 KB burst)"
    );
    let _ = writeln!(
        s,
        "{:>16} {:>14} {:>14}",
        "offered/Right", "Right Mb/s", "Left Mb/s"
    );
    for offered in [20_000_000u64, 100_000_000, 1_000_000_000] {
        // Build the Fig 4 tree fresh per load level: Fig 3's hierarchy
        // with a TBF shaper attached to the Right class.
        let mut b = super::tree_builder();
        let root = b.add_root(
            "WFQ_Root",
            Box::new(Stfq::new(WeightTable::from_pairs([
                (FlowId(1), 1), // child node ids: Left=1, Right=2
                (FlowId(2), 9),
            ]))),
        );
        let left = b.add_child(
            root,
            "WFQ_Left",
            Box::new(Stfq::new(WeightTable::from_pairs([
                (FlowId(0), 3),
                (FlowId(1), 7),
            ]))),
        );
        let right = b.add_child(
            root,
            "WFQ_Right",
            Box::new(Stfq::new(WeightTable::from_pairs([
                (FlowId(2), 4),
                (FlowId(3), 6),
            ]))),
        );
        b.set_shaper(right, Box::new(TokenBucketFilter::new(10_000_000, 15_000)));
        b.buffer_limit(200_000);
        let tree = b
            .build(Box::new(
                move |p: &Packet| if p.flow.0 < 2 { left } else { right },
            ))
            .expect("valid tree");

        // Left flows offer 5 Gb/s each; Right flows offer `offered`/2 each.
        let sources: Vec<Box<dyn TrafficSource>> = vec![
            Box::new(CbrSource::new(
                FlowId(0),
                PKT,
                5_000_000_000,
                Nanos::ZERO,
                end,
            )),
            Box::new(CbrSource::new(
                FlowId(1),
                PKT,
                5_000_000_000,
                Nanos::ZERO,
                end,
            )),
            Box::new(CbrSource::new(
                FlowId(2),
                PKT,
                offered / 2,
                Nanos::ZERO,
                end,
            )),
            Box::new(CbrSource::new(
                FlowId(3),
                PKT,
                offered / 2,
                Nanos::ZERO,
                end,
            )),
        ];
        let mut arrivals = pifo_sim::merge(sources);
        pifo_sim::renumber(&mut arrivals);

        let mut sched = TreeScheduler::new("HPFQ+TBF", tree);
        let cfg = PortConfig::new(GBIT10).with_horizon(end);
        let deps = run_port(&arrivals, &mut sched, &cfg);
        let (lo, hi) = (Nanos::from_millis(10), end);
        let right_rate = rate_mbps(&deps, 2, lo, hi) + rate_mbps(&deps, 3, lo, hi);
        let left_rate = rate_mbps(&deps, 0, lo, hi) + rate_mbps(&deps, 1, lo, hi);
        let _ = writeln!(
            s,
            "{:>13} Mb/s {:>14.2} {:>14.0}",
            offered / 1_000_000,
            right_rate,
            left_rate
        );
    }
    let _ = writeln!(
        s,
        "(paper: Right held at 10 Mbit/s regardless of offered load)"
    );
    s
}

/// F8 — minimum rate guarantees: the guaranteed flow is protected from a
/// hog by the 2-level tree; the collapsed 1-level transaction reorders
/// packets within the flow (§3.3's pitfall), the 2-level tree never does.
pub fn minrate() -> String {
    let link = 10_000_000u64; // 10 Mb/s
    let end = Nanos::from_secs(2);
    // Flow 1 is guaranteed 2 Mb/s but offers 4 — it oscillates between
    // under- and over-minimum while queued, which is exactly the §3.3
    // reordering trap for the collapsed transaction.
    let sources: Vec<Box<dyn TrafficSource>> = vec![
        Box::new(CbrSource::new(FlowId(1), PKT, 4_000_000, Nanos::ZERO, end)),
        Box::new(CbrSource::new(FlowId(2), PKT, 20_000_000, Nanos::ZERO, end)), // hog
    ];
    let mut arrivals = pifo_sim::merge(sources);
    pifo_sim::renumber(&mut arrivals);
    let cfg = PortConfig::new(link).with_horizon(end);

    // Correct 2-level tree (guarantee 2 Mb/s to flow 1, none to the hog).
    let tree = build_min_rate_tree_with_backend(
        &[(FlowId(1), 2_000_000), (FlowId(2), 1)],
        3_000,
        super::backend(),
    );
    let mut twolevel = TreeScheduler::new("min-rate-2level", tree);
    let deps_2 = run_port(&arrivals, &mut twolevel, &cfg);

    // Collapsed single PIFO running the Fig 8 transaction directly.
    let mut collapsed_tx = MinRateGuarantee::new(1, 3_000);
    collapsed_tx.set_rate(FlowId(1), 2_000_000);
    let mut b = super::tree_builder();
    let root = b.add_root("collapsed", Box::new(collapsed_tx));
    let collapsed_tree = b.build(Box::new(move |_| root)).expect("valid");
    let mut collapsed = TreeScheduler::new("min-rate-collapsed", collapsed_tree);
    let deps_1 = run_port(&arrivals, &mut collapsed, &cfg);

    // FIFO baseline: no protection at all.
    let mut fifo = FifoSched::new(100_000);
    let deps_f = run_port(&arrivals, &mut fifo, &cfg);

    let inversions = |deps: &[Departure], flow: u32| -> usize {
        let seqs: Vec<u64> = deps
            .iter()
            .filter(|d| d.packet.flow.0 == flow)
            .map(|d| d.packet.seq_in_flow)
            .collect();
        seqs.windows(2).filter(|w| w[0] > w[1]).count()
    };

    let (lo, hi) = (Nanos::from_millis(500), end);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F8 (Fig 8) min-rate: flow 1 guaranteed 2 Mb/s (sends 4), hog sends 20, link 10 Mb/s"
    );
    let _ = writeln!(
        s,
        "{:<22} {:>14} {:>12} {:>22}",
        "scheduler", "flow1 Mb/s", "hog Mb/s", "intra-flow inversions"
    );
    for (name, deps) in [
        ("2-level PIFO tree", &deps_2),
        ("collapsed 1-level", &deps_1),
        ("FIFO", &deps_f),
    ] {
        let _ = writeln!(
            s,
            "{:<22} {:>14.2} {:>12.2} {:>22}",
            name,
            rate_mbps(deps, 1, lo, hi),
            rate_mbps(deps, 2, lo, hi),
            inversions(deps, 1) + inversions(deps, 2),
        );
    }
    let _ = writeln!(
        s,
        "(paper: the 2-level tree protects the guarantee AND preserves intra-flow order;\n collapsing to one PIFO reorders packets within a flow, Sec 3.3)"
    );
    s
}

/// X5 — §6.1: buffer management is orthogonal to scheduling, and
/// necessary: a small shared tail-drop buffer lets one flow lock out the
/// others *before the scheduler sees their packets*; per-flow thresholds
/// (static, or Choudhury–Hahne dynamic \[14\]) in front of the same WFQ
/// restore the weighted shares.
pub fn buffers() -> String {
    use pifo_sim::{ManagedScheduler, SharedBuffer, Threshold};

    let end = Nanos::from_millis(10);
    let arrivals = cbr_arrivals(&[1, 2, 3], GBIT10, end);
    let weights = WeightTable::from_pairs([(FlowId(1), 1), (FlowId(2), 2), (FlowId(3), 4)]);
    let cfg = PortConfig::new(GBIT10).with_horizon(end);
    let (lo, hi) = (Nanos::from_millis(5), end);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "X5 (Sec 6.1): 256-packet shared buffer, WFQ 1:2:4, phase-aligned CBR x3"
    );
    let _ = writeln!(
        s,
        "{:<26} {:>10} {:>10} {:>10}",
        "admission policy", "f1 Mb/s", "f2 Mb/s", "f3 Mb/s"
    );

    // Plain tail drop inside the tree.
    {
        let mut b = super::tree_builder();
        let root = b.add_root("wfq", Box::new(Stfq::new(weights.clone())));
        b.buffer_limit(256);
        let tree = b.build(Box::new(move |_| root)).expect("valid");
        let mut sched = TreeScheduler::new("taildrop", tree);
        let deps = run_port(&arrivals, &mut sched, &cfg);
        let _ = writeln!(
            s,
            "{:<26} {:>10.0} {:>10.0} {:>10.0}",
            "shared tail drop",
            rate_mbps(&deps, 1, lo, hi),
            rate_mbps(&deps, 2, lo, hi),
            rate_mbps(&deps, 3, lo, hi)
        );
    }
    for (name, threshold) in [
        ("static 85/flow", Threshold::Static(85)),
        ("dynamic alpha=1", Threshold::Dynamic { num: 1, den: 1 }),
    ] {
        let mut sched = ManagedScheduler::new(
            TreeScheduler::new("wfq", single_stfq_tree(weights.clone(), usize::MAX)),
            SharedBuffer::new(256, threshold),
        );
        let deps = run_port(&arrivals, &mut sched, &cfg);
        let _ = writeln!(
            s,
            "{:<26} {:>10.0} {:>10.0} {:>10.0}",
            name,
            rate_mbps(&deps, 1, lo, hi),
            rate_mbps(&deps, 2, lo, hi),
            rate_mbps(&deps, 3, lo, hi)
        );
    }
    let _ = writeln!(
        s,
        "(ideal 1:2:4 = 1429/2857/5714; tail drop locks flow 1 in — thresholds fix it)"
    );
    s
}

#[cfg(test)]
mod tests {
    // The fairness experiments are validated end-to-end by the
    // integration tests in `tests/experiments.rs`; here we only make
    // sure each driver runs and emits its headline lines.
    #[test]
    fn stfq_runs() {
        let out = super::stfq();
        assert!(out.contains("Jain index"));
    }

    #[test]
    fn minrate_runs() {
        let out = super::minrate();
        assert!(out.contains("2-level PIFO tree"));
    }

    #[test]
    fn buffers_shows_lockout_and_fix() {
        let out = super::buffers();
        assert!(out.contains("dynamic alpha=1"), "{out}");
    }
}
