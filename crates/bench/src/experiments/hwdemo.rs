//! F2 / F12 / X2 / X3: hardware-model demonstrations.

use pifo_algos::Stfq;
use pifo_compiler::{compile, instantiate, TreeSpec};
use pifo_core::prelude::*;
use pifo_core::transaction::FnTransaction;
use pifo_hw::{BlockConfig, LogicalPifoId, PifoBlock, PipelinedFlowScheduler};
use std::fmt::Write as _;

/// F2 — the literal Fig 2 example: a PIFO tree whose root PIFO encodes
/// the instantaneous order P3, P1, P2, P4.
pub fn fig2() -> String {
    let leaf_rank = |ranks: &'static [(u64, u64)]| {
        Box::new(FnTransaction::new("fixed", move |ctx: &EnqCtx<'_>| {
            let id = ctx.packet.id.0;
            Rank(
                ranks
                    .iter()
                    .find(|(p, _)| *p == id)
                    .map(|(_, r)| *r)
                    .expect("known"),
            )
        })) as Box<dyn SchedulingTransaction>
    };
    let root_rank = Box::new(FnTransaction::new("fixed", |ctx: &EnqCtx<'_>| {
        Rank(match ctx.packet.id.0 {
            3 => 0,
            1 => 1,
            2 => 2,
            4 => 3,
            _ => unreachable!(),
        })
    }));
    let mut b = super::tree_builder();
    let root = b.add_root("Root", root_rank);
    let left = b.add_child(root, "L", leaf_rank(&[(3, 0), (4, 1)]));
    let right = b.add_child(root, "R", leaf_rank(&[(1, 0), (2, 1)]));
    let mut tree = b
        .build(Box::new(
            move |p: &Packet| if p.flow.0 == 0 { left } else { right },
        ))
        .expect("valid");

    for (id, flow) in [(3u64, 0u32), (1, 1), (2, 1), (4, 0)] {
        tree.enqueue(Packet::new(id, FlowId(flow), 100, Nanos(id)), Nanos(id))
            .expect("enqueue");
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F2 (Fig 2): PIFO trees encode the instantaneous scheduling order"
    );
    let _ = writeln!(s, "root PIFO: {}", tree.debug_pifo(root));
    let _ = writeln!(s, "L PIFO:    {}", tree.debug_pifo(left));
    let _ = writeln!(s, "R PIFO:    {}", tree.debug_pifo(right));
    let order: Vec<String> = std::iter::from_fn(|| tree.dequeue(Nanos(100)))
        .map(|p| format!("P{}", p.id.0))
        .collect();
    let _ = writeln!(
        s,
        "dequeue order: {} (paper: P3, P1, P2, P4)",
        order.join(", ")
    );
    s
}

/// F12 — the flow-scheduler + rank-store block at Trident scale: 60 K
/// elements over 1 K flows sort correctly while only 1 K entries ever
/// need comparators; plus the Fig 13 pipeline throughput and the §5.2
/// dequeue-interval arithmetic.
pub fn block() -> String {
    let cfg = BlockConfig::default(); // 1024 flows, 64K rank store
    let mut blk = PifoBlock::new(cfg).strict_monotonic(true);
    let l = LogicalPifoId(0);

    // 60K elements, 1K flows, monotone ranks per flow (globally unique).
    let n_flows = 1_000u32;
    let n_elems = 60_000u64;
    let mut next: Vec<u64> = vec![0; n_flows as usize];
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut max_active = 0usize;
    for i in 0..n_elems {
        let f = (rand() % n_flows as u64) as u32;
        next[f as usize] += 1 + rand() % 64;
        let rank = Rank(next[f as usize] * 1024 + f as u64);
        blk.enqueue(l, FlowId(f), rank, i).expect("capacity");
        max_active = max_active.max(blk.active_flows());
    }
    let stored = blk.stored_elements();

    // Drain and check global sorted order.
    let mut last = Rank(0);
    let mut drained = 0u64;
    let mut sorted = true;
    while let Some((r, _, _)) = blk.dequeue(l) {
        if r < last {
            sorted = false;
        }
        last = r;
        drained += 1;
    }

    // Fig 13 pipeline: sustained 2 pushes + 1 pop per cycle (occupancy
    // grows by one entry per cycle, so 1 000 cycles stay within the
    // 2 048-entry flow scheduler).
    let mut pipe = PipelinedFlowScheduler::new(2_048);
    let mut flow_seq = 0u32;
    for c in 0..1_000u64 {
        pipe.push(pifo_hw::FlowEntry {
            rank: Rank(c * 2),
            lpifo: l,
            flow: FlowId(flow_seq % 1_000),
            meta: 0,
        })
        .expect("push 1");
        flow_seq += 1;
        pipe.push(pifo_hw::FlowEntry {
            rank: Rank(c * 2 + 1),
            lpifo: l,
            flow: FlowId(flow_seq % 1_000),
            meta: 0,
        })
        .expect("push 2");
        let _ = pipe.pop(l).expect("pop");
        pipe.tick();
    }

    let mut s = String::new();
    let _ = writeln!(s, "F12 (Figs 12-13): PIFO block at Broadcom-Trident scale");
    let _ = writeln!(
        s,
        "elements buffered: {n_elems} across {n_flows} flows — all dequeued in rank order: {sorted}"
    );
    let _ = writeln!(
        s,
        "flow-scheduler occupancy peaked at {max_active} entries (sorting {n_flows} heads, not {n_elems} packets)"
    );
    let _ = writeln!(
        s,
        "rank-store occupancy before drain: {stored} (SRAM FIFOs)"
    );
    let _ = writeln!(s, "drained: {drained}");
    let _ = writeln!(
        s,
        "pipeline: {} ops in 1_000 cycles = 3.0 ops/cycle (2 push + 1 pop, Fig 13)",
        pipe.ops_completed
    );
    let _ = writeln!(
        s,
        "same-lpifo dequeue spacing: {} cycles; 100 Gb/s @64 B needs one per {} cycles — satisfied",
        pifo_hw::config::DEQ_SAME_LPIFO_INTERVAL,
        pifo_hw::config::DEQ_INTERVAL_100G
    );
    s
}

fn fifo_tx() -> Box<dyn SchedulingTransaction> {
    Box::new(FnTransaction::new("fifo", |ctx: &EnqCtx<'_>| {
        Rank(ctx.now.as_nanos())
    }))
}

/// X2 — §4.3 conflicts: shaping releases are best-effort; under a fully
/// loaded enqueue port they defer, and a 1.25× over-clock clears them.
pub fn conflicts() -> String {
    struct Delay(u64);
    impl ShapingTransaction for Delay {
        fn send_time(&mut self, ctx: &EnqCtx<'_>) -> Nanos {
            Nanos(ctx.now.as_nanos() + self.0)
        }
    }

    let build = |overclock: Option<u64>| -> pifo_hw::Mesh {
        let spec = TreeSpec::new(vec![
            ("root", None, false),
            ("shaped_leaf", Some(0), true),
            ("busy_leaf", Some(0), false),
        ]);
        let layout = compile(&spec).expect("valid");
        let sched: Vec<Box<dyn SchedulingTransaction>> = vec![fifo_tx(), fifo_tx(), fifo_tx()];
        let shape: Vec<Option<Box<dyn ShapingTransaction>>> =
            vec![None, Some(Box::new(Delay(10))), None];
        let mesh = instantiate(
            &layout,
            sched,
            shape,
            Box::new(|p: &Packet| if p.flow.0 == 0 { 1usize } else { 2usize }),
            BlockConfig::default(),
            1,
        );
        match overclock {
            Some(k) => mesh.with_overclock_every(k),
            None => mesh,
        }
    };

    let run = |overclock: Option<u64>| -> (u64, u64) {
        let mut mesh = build(overclock);
        // 50 shaped packets spread out…
        // …while the busy leaf consumes the root's enqueue port every cycle.
        let mut id = 0u64;
        for cycle in 0..2_000u64 {
            if cycle % 40 == 0 {
                let _ = mesh.enqueue_packet(Packet::new(id, FlowId(0), 100, mesh.now()));
                id += 1;
                mesh.tick();
                continue; // shaped packet claimed the ports this cycle
            }
            let _ = mesh.enqueue_packet(Packet::new(10_000 + id, FlowId(1), 100, mesh.now()));
            id += 1;
            mesh.tick();
        }
        (
            mesh.stats().shaping_releases,
            mesh.stats().shaping_deferrals,
        )
    };

    let (rel_base, def_base) = run(None);
    let (rel_oc, def_oc) = run(Some(4));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "X2 (Sec 4.3): shaping vs scheduling port conflicts on the mesh"
    );
    let _ = writeln!(s, "{:<18} {:>10} {:>10}", "clock", "releases", "deferrals");
    let _ = writeln!(s, "{:<18} {:>10} {:>10}", "1.0 GHz", rel_base, def_base);
    let _ = writeln!(
        s,
        "{:<18} {:>10} {:>10}",
        "1.25 GHz (bonus)", rel_oc, def_oc
    );
    let _ = writeln!(
        s,
        "(scheduling always wins the port; over-clocking gives shaping spare slots, Sec 4.3)"
    );
    s
}

/// X3 — the headline: a 5-level hierarchy, programmable at every level,
/// running on a 5-block mesh at Trident scale.
pub fn fivelevel() -> String {
    let spec = TreeSpec::linear(5);
    let layout = compile(&spec).expect("valid");
    let n = layout.placements.len();

    // STFQ at every level. Interior nodes see one child (linear chain);
    // the leaf schedules 1 000 flows.
    let sched: Vec<Box<dyn SchedulingTransaction>> = (0..n)
        .map(|_| Box::new(Stfq::unweighted()) as Box<dyn SchedulingTransaction>)
        .collect();
    let shape: Vec<Option<Box<dyn ShapingTransaction>>> = (0..n).map(|_| None).collect();
    let leaf = n - 1;
    let mut mesh = instantiate(
        &layout,
        sched,
        shape,
        Box::new(move |_| leaf),
        BlockConfig::default(),
        1,
    );

    // 60 K packets across 1 K flows; enqueue one per cycle, transmit
    // every 5 cycles (a 100 Gb/s port at 64 B packets, §5.2).
    let n_pkts = 60_000u64;
    let n_flows = 1_000u32;
    let mut sent = 0u64;
    let mut got = 0u64;
    let mut cycle = 0u64;
    let mut enq_retries = 0u64;
    let mut pending: Option<Packet> = None;
    while got < n_pkts {
        if sent < n_pkts && pending.is_none() {
            pending = Some(Packet::new(
                sent,
                FlowId((sent % n_flows as u64) as u32),
                64,
                mesh.now(),
            ));
        }
        if let Some(p) = pending.take() {
            match mesh.enqueue_packet(p.clone()) {
                Ok(()) => sent += 1,
                Err(_) => {
                    enq_retries += 1;
                    pending = Some(p);
                }
            }
        }
        if cycle % 5 == 4 && sent > got {
            if let Ok(Some(_)) = mesh.transmit() {
                got += 1;
            }
        }
        mesh.tick();
        cycle += 1;
        assert!(cycle < 50_000_000, "mesh wedged");
    }

    let mut s = String::new();
    let _ = writeln!(
        s,
        "X3 (Sec 1): 5-level programmable hierarchy on a 5-block mesh"
    );
    s.push_str(&layout.render());
    let _ = writeln!(
        s,
        "packets: {sent} in / {got} out across {n_flows} flows, {cycle} cycles, {enq_retries} enqueue retries"
    );
    let _ = writeln!(s, "stats: {:?}", mesh.stats());
    let _ = writeln!(
        s,
        "(1 enqueue/cycle + 1 transmit per 5 cycles — the 64x10G / 100G envelope of Sec 5.1-5.2)"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_order_matches_paper() {
        let out = super::fig2();
        assert!(out.contains("P3, P1, P2, P4"));
    }

    #[test]
    fn conflicts_overclock_helps() {
        let out = super::conflicts();
        assert!(out.contains("1.25 GHz"));
    }
}
