//! X4 — §4.1: every figure transaction compiles to an atom pipeline;
//! the accept/reject behaviour across the atom ladder.

use domino_lite::ast::AtomKind;
use domino_lite::{analyze, compile, figures, parse};
use std::fmt::Write as _;

/// Analyze all figure programs and sweep the atom ladder for STFQ.
pub fn domino() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "X4 (Sec 4.1): transactions -> atom pipelines (domino-lite)"
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12} {:>8} {:>7}  clusters",
        "transaction", "atom needed", "stages", "atoms"
    );
    for (name, src) in figures::all_figures() {
        let prog = parse(src).expect("figure parses");
        let r = analyze(&prog).expect("figure analyzes");
        let clusters: Vec<String> = r
            .clusters
            .iter()
            .map(|c| format!("{{{}}}", c.join(",")))
            .collect();
        let _ = writeln!(
            s,
            "{:<32} {:>12} {:>8} {:>7}  {}",
            name,
            r.required_atom.to_string(),
            r.stages,
            r.atoms,
            clusters.join(" ")
        );
    }
    let _ = writeln!(s, "\nSTFQ (Fig 1) across the atom ladder:");
    let prog = parse(figures::STFQ_SRC).expect("parses");
    for atom in [
        AtomKind::Stateless,
        AtomKind::ReadAddWrite,
        AtomKind::PredRaw,
        AtomKind::IfElseRaw,
        AtomKind::Sub,
        AtomKind::NestedIf,
        AtomKind::Pairs,
    ] {
        let verdict = match compile(&prog, atom) {
            Ok(_) => "compiles (runs at line rate)".to_string(),
            Err(e) => format!("REJECTED: {e}"),
        };
        let _ = writeln!(s, "  {:<12} {}", atom.to_string(), verdict);
    }
    let _ = writeln!(
        s,
        "(paper quotes Domino [35]: Fig 1 runs at 1 GHz with the Pairs atom — reproduced)"
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn domino_report_shows_pairs() {
        let out = super::domino();
        assert!(out.contains("Pairs"));
        assert!(out.contains("REJECTED"));
    }
}
