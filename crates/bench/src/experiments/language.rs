//! X4 — §4.1: every figure transaction through the full staged compiler
//! — lex → parse → check → analyze → hardware mapping → interpretation —
//! plus the accept/reject behaviour across the atom ladder and the
//! front-end's caret diagnostics.

use domino_lite::ast::AtomKind;
use domino_lite::{analyze, compile, figures, lex, map_to_hw, parse, Interp, PacketView};
use std::fmt::Write as _;

/// Run every figure program through the whole staged pipeline and sweep
/// the atom ladder for STFQ.
pub fn domino() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "X4 (Sec 4.1): transactions -> atom pipelines (domino-lite)"
    );
    let _ = writeln!(
        s,
        "{:<32} {:>12} {:>8} {:>7}  clusters",
        "transaction", "atom needed", "stages", "atoms"
    );
    for (name, src) in figures::all_figures() {
        let prog = parse(src).expect("figure parses");
        let r = analyze(&prog).expect("figure analyzes");
        let clusters: Vec<String> = r
            .clusters
            .iter()
            .map(|c| format!("{{{}}}", c.join(",")))
            .collect();
        let _ = writeln!(
            s,
            "{:<32} {:>12} {:>8} {:>7}  {}",
            name,
            r.required_atom.to_string(),
            r.stages,
            r.atoms,
            clusters.join(" ")
        );
    }
    let _ = writeln!(s, "\nSTFQ (Fig 1) across the atom ladder:");
    let prog = parse(figures::STFQ_SRC).expect("parses");
    for atom in [
        AtomKind::Stateless,
        AtomKind::ReadAddWrite,
        AtomKind::PredRaw,
        AtomKind::IfElseRaw,
        AtomKind::Sub,
        AtomKind::NestedIf,
        AtomKind::Pairs,
    ] {
        let verdict = match compile(&prog, atom) {
            Ok(_) => "compiles (runs at line rate)".to_string(),
            Err(e) => format!("REJECTED: {e}"),
        };
        let _ = writeln!(s, "  {:<12} {}", atom.to_string(), verdict);
    }
    let _ = writeln!(
        s,
        "(paper quotes Domino [35]: Fig 1 runs at 1 GHz with the Pairs atom — reproduced)"
    );

    // The staged front-end, end to end per figure: token stream size,
    // checked parse, atom analysis, placement on the pifo-hw block, and
    // one interpreted sample packet.
    let _ = writeln!(
        s,
        "\nStaged pipeline per figure (lex -> parse -> check -> analyze -> hw map -> interp):"
    );
    for (name, src) in figures::all_figures() {
        let toks = lex(src).expect("figure lexes");
        let prog = parse(src).expect("figure passes the front-end");
        let report = analyze(&prog).expect("figure analyzes");
        let hw = map_to_hw(&prog, &report);

        let mut view = PacketView::synthetic(1, 1_000);
        for (field, value) in [
            ("length", 1_500),
            ("length_nb", 1_500 * 8_000_000_000),
            ("slack", 40_000),
            ("prev_wait_time", 250),
            ("class", 0),
            ("arrival", 990),
            ("deadline", 50_000),
            ("flow_size", 9_000),
            ("remaining", 4_500),
            ("attained", 4_500),
            ("seq", 3),
        ] {
            view.set(field, value);
        }
        let mut interp = Interp::new(prog);
        interp.run(&mut view).expect("figure interprets");
        let rank = view.get("rank").expect("every figure assigns p.rank");

        let _ = writeln!(s, "  {name} ({} tokens): sample rank {rank}", toks.len());
        for line in hw.to_string().lines() {
            let _ = writeln!(s, "    {line}");
        }
    }

    // What rejection looks like: the checker's §4.3 atomicity diagnostic
    // with its caret snippet, straight from the front-end.
    let _ = writeln!(s, "\nFront-end rejection (§4.3), as reported to the user:");
    let over_coupled = "state a = 0;\nstate b = 0;\nstate c = 0;\n\
                        a = a + b;\nb = b + c;\nc = c + a;\np.rank = a;";
    match parse(over_coupled) {
        Ok(_) => {
            let _ = writeln!(s, "  UNEXPECTED: over-coupled program accepted");
        }
        Err(e) => {
            for line in e.render().lines() {
                let _ = writeln!(s, "  {line}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn domino_report_shows_pairs() {
        let out = super::domino();
        assert!(out.contains("Pairs"));
        assert!(out.contains("REJECTED"));
    }

    #[test]
    fn domino_report_covers_the_staged_pipeline() {
        let out = super::domino();
        // Every figure makes it through to a hardware placement line…
        assert_eq!(out.matches("PIFO block").count(), 5, "{out}");
        assert!(out.contains("sample rank"), "{out}");
        // …and the rejection showcase renders a caret snippet.
        assert!(out.contains("§4.3"), "{out}");
        assert!(out.contains('^'), "{out}");
    }
}
