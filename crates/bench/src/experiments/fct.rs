//! FCT experiment: the §1 motivation — "minimizing flow completion
//! times using Shortest Remaining Processing Time" — programmed as a
//! one-line transaction and compared against FIFO and SJF on a
//! heavy-tailed workload.

use pifo_algos::{Sjf, Srpt};
use pifo_core::prelude::*;
use pifo_sim::{
    flow_completions, flow_workload, run_port, FifoSched, PortConfig, SizeDistribution,
    TreeScheduler,
};
use std::collections::HashMap;
use std::fmt::Write as _;

fn single_node_tree(tx: Box<dyn SchedulingTransaction>, limit: usize) -> ScheduleTree {
    let mut b = super::tree_builder();
    let root = b.add_root("q", tx);
    b.buffer_limit(limit);
    b.build(Box::new(move |_| root)).expect("valid")
}

/// Run the workload through one scheduler; FCT stats per size bucket.
fn run_one(
    arrivals: &[Packet],
    expected: &HashMap<FlowId, u64>,
    mut sched: Box<dyn pifo_sim::PortScheduler>,
    rate: u64,
) -> (f64, f64, f64, usize) {
    let cfg = PortConfig::new(rate).with_horizon(Nanos::from_secs(10));
    let deps = run_port(arrivals, sched.as_mut(), &cfg);
    let fcts = flow_completions(&deps, expected);
    let small: Vec<f64> = fcts
        .iter()
        .filter(|c| c.bytes < 100_000)
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    let large: Vec<f64> = fcts
        .iter()
        .filter(|c| c.bytes >= 100_000)
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let all: Vec<f64> = fcts
        .iter()
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    (mean(&all), mean(&small), mean(&large), fcts.len())
}

/// SRPT / SJF / FIFO on a web-search-like heavy-tailed workload.
pub fn srpt() -> String {
    const RATE: u64 = 10_000_000_000;
    // ~0.5 load: 300 flows, mean size ~0.4 MB, over ~0.2 s.
    let (arrivals, specs) = flow_workload(
        300,
        1_500.0,
        &SizeDistribution::web_search(),
        RATE,
        1_500,
        11,
    );
    let expected: HashMap<FlowId, u64> = specs.iter().map(|s| (s.flow, s.size)).collect();

    let mut s = String::new();
    let _ = writeln!(
        s,
        "FCT (Sec 1 / Sec 3.4): web-search workload, 300 flows, 10 Gb/s, mean FCT in ms"
    );
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "sched", "mean", "small<100KB", "large", "completed"
    );
    let runs: Vec<(&str, Box<dyn pifo_sim::PortScheduler>)> = vec![
        (
            "SRPT",
            Box::new(TreeScheduler::new(
                "SRPT",
                single_node_tree(Box::new(Srpt), 1_000_000),
            )),
        ),
        (
            "SJF",
            Box::new(TreeScheduler::new(
                "SJF",
                single_node_tree(Box::new(Sjf), 1_000_000),
            )),
        ),
        ("FIFO", Box::new(FifoSched::new(1_000_000))),
    ];
    let mut means = HashMap::new();
    for (name, sched) in runs {
        let (mean, small, large, n) = run_one(&arrivals, &expected, sched, RATE);
        means.insert(name, (mean, small));
        let _ = writeln!(
            s,
            "{:<8} {:>10.3} {:>12.3} {:>12.3} {:>10}",
            name, mean, small, large, n
        );
    }
    let (srpt_small, fifo_small) = (means["SRPT"].1, means["FIFO"].1);
    let _ = writeln!(
        s,
        "small-flow mean FCT: SRPT is {:.1}x better than FIFO (paper: SRPT minimizes FCT [33])",
        fifo_small / srpt_small.max(1e-9)
    );
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn srpt_beats_fifo_for_small_flows() {
        let out = super::srpt();
        assert!(out.contains("SRPT"), "{out}");
    }
}
