//! FCT experiment: the §1 motivation — "minimizing flow completion
//! times using Shortest Remaining Processing Time" — programmed as a
//! one-line transaction and compared against FIFO and SJF on a
//! heavy-tailed workload.

use pifo_algos::{Sjf, Srpt};
use pifo_core::prelude::*;
use pifo_sim::{
    flow_completions, flow_workload, run_port, FifoSched, PortConfig, SizeDistribution,
    TreeScheduler,
};
use std::collections::HashMap;
use std::fmt::Write as _;

fn tree_with(
    backend: PifoBackend,
    tx: Box<dyn SchedulingTransaction>,
    limit: usize,
) -> ScheduleTree {
    let mut b = TreeBuilder::new();
    b.with_backend(backend);
    b.track_inversions(!backend.is_exact());
    let root = b.add_root("q", tx);
    b.buffer_limit(limit);
    b.build(Box::new(move |_| root)).expect("valid")
}

fn single_node_tree(tx: Box<dyn SchedulingTransaction>, limit: usize) -> ScheduleTree {
    tree_with(super::backend(), tx, limit)
}

/// Run the workload through one scheduler; FCT stats per size bucket.
fn run_one(
    arrivals: &[Packet],
    expected: &HashMap<FlowId, u64>,
    sched: &mut dyn pifo_sim::PortScheduler,
    rate: u64,
) -> (f64, f64, f64, usize) {
    let cfg = PortConfig::new(rate).with_horizon(Nanos::from_secs(10));
    let deps = run_port(arrivals, sched, &cfg);
    let fcts = flow_completions(&deps, expected);
    let small: Vec<f64> = fcts
        .iter()
        .filter(|c| c.bytes < 100_000)
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    let large: Vec<f64> = fcts
        .iter()
        .filter(|c| c.bytes >= 100_000)
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let all: Vec<f64> = fcts
        .iter()
        .map(|c| c.fct().as_nanos() as f64 / 1e6)
        .collect();
    (mean(&all), mean(&small), mean(&large), fcts.len())
}

/// SRPT / SJF / FIFO on a web-search-like heavy-tailed workload.
pub fn srpt() -> String {
    const RATE: u64 = 10_000_000_000;
    // ~0.5 load: 300 flows, mean size ~0.4 MB, over ~0.2 s.
    let (arrivals, specs) = flow_workload(
        300,
        1_500.0,
        &SizeDistribution::web_search(),
        RATE,
        1_500,
        11,
    );
    let expected: HashMap<FlowId, u64> = specs.iter().map(|s| (s.flow, s.size)).collect();

    let mut s = String::new();
    let _ = writeln!(
        s,
        "FCT (Sec 1 / Sec 3.4): web-search workload, 300 flows, 10 Gb/s, mean FCT in ms"
    );
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "sched", "mean", "small<100KB", "large", "completed"
    );
    // SRPT is held outside the run list so its tree (and, for
    // approximate backends, its inversion tracker) stays inspectable.
    let mut srpt_sched = TreeScheduler::new("SRPT", single_node_tree(Box::new(Srpt), 1_000_000));
    let mut sjf_sched = TreeScheduler::new("SJF", single_node_tree(Box::new(Sjf), 1_000_000));
    let mut fifo_sched = FifoSched::new(1_000_000);
    let runs: Vec<(&str, &mut dyn pifo_sim::PortScheduler)> = vec![
        ("SRPT", &mut srpt_sched),
        ("SJF", &mut sjf_sched),
        ("FIFO", &mut fifo_sched),
    ];
    let mut means = HashMap::new();
    for (name, sched) in runs {
        let (mean, small, large, n) = run_one(&arrivals, &expected, sched, RATE);
        means.insert(name, (mean, small));
        let _ = writeln!(
            s,
            "{:<8} {:>10.3} {:>12.3} {:>12.3} {:>10}",
            name, mean, small, large, n
        );
    }
    let (srpt_small, fifo_small) = (means["SRPT"].1, means["FIFO"].1);
    let _ = writeln!(
        s,
        "small-flow mean FCT: SRPT is {:.1}x better than FIFO (paper: SRPT minimizes FCT [33])",
        fifo_small / srpt_small.max(1e-9)
    );

    // Approximate engines legally reorder: quantify the FCT cost against
    // the exact reference on the identical workload (PR 7's open sweep).
    let backend = super::backend();
    if !backend.is_exact() {
        let mut exact = TreeScheduler::new(
            "SRPT-exact",
            tree_with(PifoBackend::SortedArray, Box::new(Srpt), 1_000_000),
        );
        let (mean_e, small_e, large_e, _) = run_one(&arrivals, &expected, &mut exact, RATE);
        let (mean_a, small_a) = means["SRPT"];
        let _ = writeln!(
            s,
            "\napproximate backend `{backend}` vs exact SRPT (same workload, mean FCT ms):"
        );
        let _ = writeln!(
            s,
            "  all: {mean_a:.3} vs {mean_e:.3} ({:+.1}%)   small<100KB: {small_a:.3} vs {small_e:.3} ({:+.1}%)",
            100.0 * (mean_a - mean_e) / mean_e.max(1e-9),
            100.0 * (small_a - small_e) / small_e.max(1e-9),
        );
        let _ = writeln!(s, "  exact large-flow mean: {large_e:.3}");
        if let Some(inv) = srpt_sched.tree().inversion_stats() {
            let _ = writeln!(
                s,
                "  rank inversions: {}/{} dequeues ({:.2}%), mean displacement {:.2}, \
                 max rank regression {}",
                inv.inversions,
                inv.dequeues,
                100.0 * inv.inversions as f64 / inv.dequeues.max(1) as f64,
                inv.mean_displacement(),
                inv.max_regression
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn srpt_beats_fifo_for_small_flows() {
        let out = super::srpt();
        assert!(out.contains("SRPT"), "{out}");
    }
}
