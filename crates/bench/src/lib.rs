//! # pifo-bench
//!
//! Experiment drivers (`repro` binary) and Criterion benchmarks.
//!
//! Every table and figure of the paper has a regenerator here — run
//! `cargo run -p pifo-bench --bin repro --release -- list` for the
//! experiment index, `… -- <id>` for one experiment, or `… -- all` for
//! everything.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
