//! # pifo-bench
//!
//! Experiment drivers (`repro` binary) and Criterion benchmarks.
//!
//! Every table and figure of the paper has a regenerator here — see
//! `EXPERIMENTS.md` at the workspace root for the experiment index and
//! the recorded paper-vs-measured outcomes. Run one with
//! `cargo run -p pifo-bench --bin repro --release -- <id>` or all with
//! `… -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
