//! The one command-line parser every pifo-bench entry point shares.
//!
//! The `repro` binary and the Criterion-style bench mains all accept the
//! same two knobs — a PIFO engine selector and a CI smoke switch — and
//! routing them through this module keeps the accepted spellings and the
//! error text identical everywhere. In particular there is exactly one
//! place that knows how to turn a `--backend` value into a
//! [`PifoBackend`]: the enum's `FromStr` impl via [`extract_backend`],
//! so a new backend variant (or a parameterised one like `sp-pifo:4`)
//! becomes available to every binary the moment the enum learns it — no
//! per-binary match arms to drift out of sync.

use pifo_core::pifo::{PifoBackend, BACKEND_NAMES};

/// Pull `--backend <name>` / `--backend=<name>` out of `args` (removing
/// the consumed tokens) and parse it. Returns `Ok(None)` when the flag
/// is absent, `Err` with a user-facing message when the flag is
/// malformed or the name unknown. Later occurrences override earlier
/// ones, like most CLIs.
pub fn extract_backend(args: &mut Vec<String>) -> Result<Option<PifoBackend>, String> {
    let mut backend = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--backend" {
            if i + 1 >= args.len() {
                return Err(format!("--backend requires a value ({BACKEND_NAMES})"));
            }
            args.remove(i);
            Some(args.remove(i))
        } else if let Some(v) = args[i].strip_prefix("--backend=") {
            let v = v.to_string();
            args.remove(i);
            Some(v)
        } else {
            i += 1;
            None
        };
        if let Some(v) = value {
            backend = Some(v.parse::<PifoBackend>()?);
        }
    }
    Ok(backend)
}

/// The `--backend` usage fragment, built from the same name list the
/// parser accepts.
pub fn backend_usage() -> String {
    format!("[--backend <{BACKEND_NAMES}>]")
}

/// True when the invocation asks for the CI smoke scale: `--smoke` on
/// the command line or `env_var=1` in the environment. Every bench main
/// consults this instead of probing `std::env` itself.
pub fn smoke_flag(env_var: &str) -> bool {
    std::env::args().any(|a| a == "--smoke") || std::env::var(env_var).is_ok_and(|v| v == "1")
}

/// Pull a boolean `flag` (e.g. `"--lossless"`) out of `args`, removing
/// every occurrence. Returns true when the flag appeared at least once.
/// The same removal-parser contract as [`extract_backend`]: untouched
/// arguments stay in place, in order, for the positional parser behind.
pub fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flag_leaves_args_untouched() {
        let mut a = args(&["fig2", "stfq"]);
        assert_eq!(extract_backend(&mut a), Ok(None));
        assert_eq!(a, args(&["fig2", "stfq"]));
    }

    #[test]
    fn both_spellings_parse_and_are_consumed() {
        let mut a = args(&["--backend", "heap", "fig2"]);
        assert_eq!(extract_backend(&mut a), Ok(Some(PifoBackend::Heap)));
        assert_eq!(a, args(&["fig2"]));

        let mut a = args(&["fig2", "--backend=sp-pifo:4"]);
        assert_eq!(
            extract_backend(&mut a),
            Ok(Some(PifoBackend::SpPifo { queues: 4 }))
        );
        assert_eq!(a, args(&["fig2"]));
    }

    #[test]
    fn last_occurrence_wins() {
        let mut a = args(&["--backend=sorted", "--backend", "aifo"]);
        assert_eq!(extract_backend(&mut a), Ok(Some(PifoBackend::Aifo)));
        assert!(a.is_empty());
    }

    #[test]
    fn errors_carry_the_full_name_list() {
        let mut a = args(&["--backend", "quantum"]);
        let err = extract_backend(&mut a).unwrap_err();
        for family in ["sorted", "heap", "bucket", "sp-pifo", "rifo", "aifo"] {
            assert!(err.contains(family), "error must list '{family}': {err}");
        }
        let mut a = args(&["--backend"]);
        let err = extract_backend(&mut a).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        assert!(err.contains("sp-pifo"), "{err}");
    }

    #[test]
    fn boolean_flag_is_consumed_wherever_it_appears() {
        let mut a = args(&["--lossless", "fig2", "--lossless"]);
        assert!(extract_flag(&mut a, "--lossless"));
        assert_eq!(a, args(&["fig2"]));

        let mut a = args(&["fig2", "stfq"]);
        assert!(!extract_flag(&mut a, "--lossless"));
        assert_eq!(a, args(&["fig2", "stfq"]));
    }
}
