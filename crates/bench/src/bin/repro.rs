//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro list                      # show all experiment ids
//! repro <id> [<id>...]            # run selected experiments
//! repro all                       # run everything in order
//! repro --backend bucket <id>...  # run on a specific PIFO engine
//! ```

use pifo_bench::experiments::{registry, run, set_backend};
use pifo_core::pifo::PifoBackend;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();

    // Extract `--backend <name>` / `--backend=<name>` before dispatching.
    let mut backend = PifoBackend::default();
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--backend" {
            Some(it.next().unwrap_or_else(|| {
                eprintln!("repro: --backend requires a value (sorted | heap | bucket)");
                std::process::exit(2);
            }))
        } else {
            a.strip_prefix("--backend=").map(str::to_string)
        };
        match value {
            Some(v) => match v.parse() {
                Ok(b) => backend = b,
                Err(e) => {
                    eprintln!("repro: {e}");
                    std::process::exit(2);
                }
            },
            None => args.push(a),
        }
    }
    set_backend(backend);

    if args.is_empty() || args[0] == "list" || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro [--backend sorted|heap|bucket] <experiment id>... | all | list\n");
        eprintln!("experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<12} {desc}");
        }
        std::process::exit(if args.first().map(|a| a == "list").unwrap_or(false) {
            0
        } else {
            2
        });
    }

    let ids: Vec<String> = if args[0] == "all" {
        registry()
            .into_iter()
            .map(|(id, _, _)| id.to_string())
            .collect()
    } else {
        args
    };

    // Full experiment sweeps belong in release builds; a debug `all`
    // silently runs orders of magnitude slower as the experiments scale
    // up. Keep `cargo test -q` (which never runs this binary) and
    // habit-formed debug invocations fast by refusing, with an escape
    // hatch for people who really mean it.
    if ids.len() > 1 && cfg!(debug_assertions) && std::env::var_os("PIFO_REPRO_DEBUG").is_none() {
        eprintln!(
            "repro: refusing to run {} experiments in a debug build.\n\
             Use `cargo run -p pifo-bench --bin repro --release -- all`,\n\
             run a single experiment id, or set PIFO_REPRO_DEBUG=1 to override.",
            ids.len()
        );
        std::process::exit(2);
    }

    let mut failed = false;
    for id in &ids {
        match run(id) {
            Some(report) => {
                println!("================================================================");
                println!("[pifo backend: {backend}]");
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try `repro list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
