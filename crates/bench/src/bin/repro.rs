//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro list                        # show all experiment ids
//! repro <id> [<id>...]              # run selected experiments
//! repro all                         # run everything in order
//! repro --backend bucket <id>...    # run on a specific PIFO engine
//! repro --backend sp-pifo:4 <id>... # … including approximate ones
//! repro --lossless [<id>...]        # add the Sec 6.2 lossless demo
//! repro --domino [<id>...]          # add the Sec 4.1 compiler pipeline
//! repro --telemetry [<id>...]       # add the observability tour
//! ```

use pifo_bench::cli;
use pifo_bench::experiments::{registry, run, set_backend};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Extract `--backend <name>` / `--backend=<name>` before dispatching
    // — one shared parser across every pifo-bench entry point.
    let backend = match cli::extract_backend(&mut args) {
        Ok(choice) => choice.unwrap_or_default(),
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    set_backend(backend);

    // `--lossless` appends the Sec 6.2 lossless experiment to whatever
    // was asked for — alone it runs just that demo (`all` already
    // includes it).
    if cli::extract_flag(&mut args, "--lossless")
        && args.first().map(|a| a.as_str()) != Some("all")
        && !args.iter().any(|a| a == "pfc")
    {
        args.push("pfc".to_string());
    }

    // `--domino` likewise appends the Sec 4.1 staged-compiler experiment:
    // every figure program through lex -> parse -> check -> analyze ->
    // hw map -> interp, printing the pipeline report per figure.
    if cli::extract_flag(&mut args, "--domino")
        && args.first().map(|a| a.as_str()) != Some("all")
        && !args.iter().any(|a| a == "domino")
    {
        args.push("domino".to_string());
    }

    // `--telemetry` appends the observability tour: flight-recorder
    // events, per-packet path records, gauges, and the JSON snapshot.
    if cli::extract_flag(&mut args, "--telemetry")
        && args.first().map(|a| a.as_str()) != Some("all")
        && !args.iter().any(|a| a == "telemetry")
    {
        args.push("telemetry".to_string());
    }

    if args.is_empty() || args[0] == "list" || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: repro {} [--lossless] [--domino] [--telemetry] <experiment id>... | all | list\n",
            cli::backend_usage()
        );
        eprintln!("experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<12} {desc}");
        }
        std::process::exit(if args.first().map(|a| a == "list").unwrap_or(false) {
            0
        } else {
            2
        });
    }

    let ids: Vec<String> = if args[0] == "all" {
        registry()
            .into_iter()
            .map(|(id, _, _)| id.to_string())
            .collect()
    } else {
        args
    };

    // Full experiment sweeps belong in release builds; a debug `all`
    // silently runs orders of magnitude slower as the experiments scale
    // up. Keep `cargo test -q` (which never runs this binary) and
    // habit-formed debug invocations fast by refusing, with an escape
    // hatch for people who really mean it.
    if ids.len() > 1 && cfg!(debug_assertions) && std::env::var_os("PIFO_REPRO_DEBUG").is_none() {
        eprintln!(
            "repro: refusing to run {} experiments in a debug build.\n\
             Use `cargo run -p pifo-bench --bin repro --release -- all`,\n\
             run a single experiment id, or set PIFO_REPRO_DEBUG=1 to override.",
            ids.len()
        );
        std::process::exit(2);
    }

    let mut failed = false;
    for id in &ids {
        match run(id) {
            Some(report) => {
                println!("================================================================");
                println!("[pifo backend: {backend}]");
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try `repro list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
