//! # pifo-synth
//!
//! The synthesis cost model for §5.3–§5.4: chip area and 1 GHz timing of
//! the flow scheduler, rank store, PIFO block, and full mesh in a 16 nm
//! standard-cell library.
//!
//! We cannot run a 16 nm synthesis flow, so this crate substitutes a
//! **parametric model calibrated on the paper's own published numbers**
//! (see DESIGN.md): SRAM density from \[6\] (0.145 mm²/Mbit), the flow
//! scheduler's area-vs-flows points of Table 2, the per-parameter
//! sensitivities quoted in §5.3, and the timing cliff between 2048 and
//! 4096 flows. The model regenerates Table 1, Table 2 and the §5.4
//! wiring analysis from first principles plus those calibration anchors;
//! the scaling *shape* (linear area in flows, comparator cost scaling
//! with rank width, timing limited by the parallel compare + priority
//! encode path) is structural, not fitted.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod model;
pub mod tables;

pub use model::{AreaModel, TimingModel};
pub use tables::{render_table1, render_table2, render_wiring, Table1, Table2Row};
