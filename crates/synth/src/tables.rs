//! Renderers that regenerate the paper's evaluation tables.

use crate::model::{AreaModel, TimingModel, CHIP_AREA_MM2, MESH_ATOMS};
use pifo_hw::BlockConfig;
use std::fmt::Write as _;

/// Table 1's rows, computed.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Flow-scheduler area, mm².
    pub flow_scheduler: f64,
    /// Rank-store SRAM, mm².
    pub rank_store: f64,
    /// Next pointers, mm².
    pub next_pointers: f64,
    /// Free list, mm².
    pub free_list: f64,
    /// Head/tail/count memory, mm².
    pub head_tail_count: f64,
    /// One PIFO block, mm².
    pub block: f64,
    /// 5-block mesh, mm².
    pub mesh5: f64,
    /// Atom pipelines, mm².
    pub atoms: f64,
    /// Overhead vs a 200 mm² chip, fraction.
    pub overhead: f64,
}

/// Compute Table 1 for a configuration (baseline = the paper's).
pub fn table1(cfg: &BlockConfig) -> Table1 {
    let m = AreaModel::calibrated();
    let block = m.block_mm2(cfg);
    let mesh5 = m.mesh_mm2(cfg, 5);
    let atoms = m.atoms_mm2(MESH_ATOMS);
    Table1 {
        flow_scheduler: m.flow_scheduler_mm2(cfg),
        rank_store: m.rank_store_mm2(cfg),
        next_pointers: m.next_pointers_mm2(cfg),
        free_list: m.free_list_mm2(cfg),
        head_tail_count: m.head_tail_count_mm2(cfg),
        block,
        mesh5,
        atoms,
        overhead: (mesh5 + atoms) / CHIP_AREA_MM2,
    }
}

/// Render Table 1 as text alongside the paper's published values.
pub fn render_table1(cfg: &BlockConfig) -> String {
    let t = table1(cfg);
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: chip area of a 5-block PIFO mesh (16 nm model)");
    let _ = writeln!(
        s,
        "{:<46} {:>9} {:>9}",
        "component", "model mm2", "paper mm2"
    );
    let mut row = |name: &str, got: f64, paper: &str| {
        let _ = writeln!(s, "{name:<46} {got:>9.3} {paper:>9}");
    };
    row("Flow scheduler", t.flow_scheduler, "0.224");
    row("Rank store (64K x 48b SRAM)", t.rank_store, "0.445");
    row("Next pointers (64K x 16b)", t.next_pointers, "0.148");
    row("Free list (64K x 16b)", t.free_list, "0.148");
    row("Head/tail/count per flow", t.head_tail_count, "0.148");
    row("One PIFO block", t.block, "1.11");
    row("5-block PIFO mesh", t.mesh5, "5.55");
    row("300 atoms for rank computations", t.atoms, "1.8");
    let _ = writeln!(
        s,
        "{:<46} {:>8.1}% {:>9}",
        "Overhead vs 200 mm2 chip",
        t.overhead * 100.0,
        "3.7%"
    );
    s
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Number of flows.
    pub flows: usize,
    /// Flow-scheduler area, mm².
    pub area_mm2: f64,
    /// Meets timing at 1 GHz?
    pub meets_timing: bool,
}

/// Compute Table 2 over the paper's sweep.
pub fn table2() -> Vec<Table2Row> {
    let m = AreaModel::calibrated();
    let t = TimingModel::default();
    [256usize, 512, 1024, 2048, 4096]
        .into_iter()
        .map(|flows| {
            let cfg = BlockConfig {
                n_flows: flows,
                ..BlockConfig::default()
            };
            Table2Row {
                flows,
                area_mm2: m.flow_scheduler_mm2(&cfg),
                meets_timing: t.meets_1ghz(&cfg),
            }
        })
        .collect()
}

/// Render Table 2 alongside the paper's values.
pub fn render_table2() -> String {
    let paper = [
        (256, 0.053, true),
        (512, 0.107, true),
        (1024, 0.224, true),
        (2048, 0.454, true),
        (4096, 0.914, false),
    ];
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: flow-scheduler area and 1 GHz timing vs #flows");
    let _ = writeln!(
        s,
        "{:>7} {:>10} {:>10} {:>12} {:>12}",
        "#flows", "model mm2", "paper mm2", "model 1GHz?", "paper 1GHz?"
    );
    for (row, (pf, pa, pt)) in table2().into_iter().zip(paper) {
        debug_assert_eq!(row.flows, pf);
        let _ = writeln!(
            s,
            "{:>7} {:>10.3} {:>10.3} {:>12} {:>12}",
            row.flows,
            row.area_mm2,
            pa,
            if row.meets_timing { "Yes" } else { "No" },
            if pt { "Yes" } else { "No" },
        );
    }
    s
}

/// Render the §5.4 wiring analysis.
pub fn render_wiring(cfg: &BlockConfig, n_blocks: usize) -> String {
    use pifo_compiler::MeshLayout;
    let per_set = MeshLayout::wire_set_bits(cfg);
    let sets = n_blocks * (n_blocks - 1);
    let total = per_set as usize * sets;
    let mut s = String::new();
    let _ = writeln!(s, "Wiring (Section 5.4), {n_blocks}-block full mesh:");
    let _ = writeln!(
        s,
        "  enqueue bus: lpifo {} + rank {} + meta {} + flow {} bits",
        cfg.lpifo_id_bits(),
        cfg.rank_bits,
        cfg.meta_bits,
        cfg.flow_id_bits()
    );
    let _ = writeln!(
        s,
        "  dequeue bus: lpifo {} + element {} bits",
        cfg.lpifo_id_bits(),
        cfg.meta_bits
    );
    let _ = writeln!(s, "  per set: {per_set} bits (paper: 106)");
    let _ = writeln!(
        s,
        "  sets: {n_blocks}*{} = {sets} (paper: 20)",
        n_blocks - 1
    );
    let _ = writeln!(s, "  total: {total} bits (paper: 2120)");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_overhead_under_4_percent() {
        let t = table1(&BlockConfig::default());
        assert!(
            t.overhead < 0.04,
            "headline claim: <4% ({:.2}%)",
            t.overhead * 100.0
        );
        assert!(t.overhead > 0.03, "and not trivially small");
    }

    #[test]
    fn table2_has_five_rows_and_cliff() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        assert!(rows[..4].iter().all(|r| r.meets_timing));
        assert!(!rows[4].meets_timing);
    }

    #[test]
    fn renders_mention_paper_anchors() {
        let s = render_table1(&BlockConfig::default());
        assert!(s.contains("3.7%"));
        assert!(s.contains("Flow scheduler"));
        let s = render_table2();
        assert!(s.contains("4096"));
        let s = render_wiring(&BlockConfig::default(), 5);
        assert!(s.contains("106"));
        assert!(s.contains("2120"));
    }

    #[test]
    fn wiring_totals_match_paper() {
        let cfg = BlockConfig::default();
        let s = render_wiring(&cfg, 5);
        assert!(s.contains("per set: 106 bits"));
        assert!(s.contains("total: 2120 bits"));
    }
}
