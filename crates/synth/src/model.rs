//! The calibrated area/timing model.
//!
//! ## Area
//!
//! The flow scheduler is a sorted array in flip-flops: per entry it needs
//! storage for every bit, a rank comparator, and shift muxing. Its area
//! is modelled as
//!
//! ```text
//! area(flows) = flows · (c_store · entry_bits + c_cmp · rank_bits + c_enc)
//! ```
//!
//! with three coefficients calibrated by least squares against the six
//! synthesis points the paper publishes (Table 2's five flow counts at
//! the baseline widths, plus the §5.3 sensitivity points for 32-bit
//! ranks, 64-bit metadata and 1024 logical PIFOs). SRAM structures are
//! priced at the paper's 0.145 mm²/Mbit \[6\].
//!
//! ## Timing
//!
//! The flow scheduler's critical path is the parallel comparison plus the
//! priority encoder across `flows` entries; the encoder's depth grows
//! with `log2(flows)`. The model is calibrated so 2048 flows meet 1 GHz
//! and 4096 do not — the cliff Table 2 reports.

use pifo_hw::BlockConfig;

/// SRAM density at 16 nm, mm² per Mbit (paper §5.3, reference \[6\]).
pub const SRAM_MM2_PER_MBIT: f64 = 0.145;

/// Area of one Domino `Pairs` atom, µm², quoted by §4.1 (32 nm figure;
/// used as-is, as the paper does).
pub const ATOM_AREA_UM2: f64 = 6_000.0;

/// Number of rank-computation atoms provisioned across the mesh (§5.3:
/// "300 atoms spread out over the 5-block PIFO mesh").
pub const MESH_ATOMS: usize = 300;

/// Switching-chip die area used for overhead percentages (§5.3 uses the
/// 200 mm² lower bound of \[21\]).
pub const CHIP_AREA_MM2: f64 = 200.0;

/// Calibration targets published in the paper.
///
/// `(flows, rank_bits, meta_bits, lpifo_bits, area_mm2)`
const CALIBRATION_POINTS: &[(f64, f64, f64, f64, f64)] = &[
    // Table 2 (baseline widths: rank 16, meta 32, lpifos 256 -> 8 bits,
    // flow id bits = log2(flows)).
    (256.0, 16.0, 32.0, 8.0, 0.053),
    (512.0, 16.0, 32.0, 8.0, 0.107),
    (1024.0, 16.0, 32.0, 8.0, 0.224),
    (2048.0, 16.0, 32.0, 8.0, 0.454),
    (4096.0, 16.0, 32.0, 8.0, 0.914),
    // §5.3 sensitivities at 1024 flows.
    (1024.0, 32.0, 32.0, 8.0, 0.317),  // rank 16 -> 32 bits
    (1024.0, 16.0, 64.0, 8.0, 0.317),  // meta 32 -> 64 bits
    (1024.0, 16.0, 32.0, 10.0, 0.233), // lpifos 256 -> 1024
];

/// The fitted flow-scheduler area model.
#[derive(Debug, Clone)]
pub struct AreaModel {
    /// mm² per flow per stored bit (flip-flop + shift mux).
    pub c_store: f64,
    /// mm² per flow per rank bit (comparator).
    pub c_cmp: f64,
    /// mm² per flow fixed cost (priority encoder share, control).
    pub c_enc: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl AreaModel {
    /// Fit the three coefficients to the paper's published points by
    /// ordinary least squares (normal equations, 3×3 — solved exactly).
    pub fn calibrated() -> Self {
        // Rows: (flows·entry_bits, flows·rank_bits, flows) -> area.
        let mut ata = [[0.0f64; 3]; 3];
        let mut atb = [0.0f64; 3];
        for &(flows, rank, meta, lpifo, area) in CALIBRATION_POINTS {
            let flow_id_bits = (flows as u64).next_power_of_two().trailing_zeros() as f64;
            let entry_bits = rank + meta + lpifo + flow_id_bits;
            let x = [flows * entry_bits, flows * rank, flows];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += x[i] * x[j];
                }
                atb[i] += x[i] * area;
            }
        }
        let coeffs = solve3(ata, atb);
        AreaModel {
            c_store: coeffs[0],
            c_cmp: coeffs[1],
            c_enc: coeffs[2],
        }
    }

    /// Bits stored per flow-scheduler entry for `cfg`.
    pub fn entry_bits(cfg: &BlockConfig) -> f64 {
        (cfg.rank_bits + cfg.meta_bits + cfg.lpifo_id_bits() + cfg.flow_id_bits()) as f64
    }

    /// Flow-scheduler area in mm² for `cfg`.
    pub fn flow_scheduler_mm2(&self, cfg: &BlockConfig) -> f64 {
        let flows = cfg.n_flows as f64;
        flows * (self.c_store * Self::entry_bits(cfg) + self.c_cmp * cfg.rank_bits as f64)
            + flows * self.c_enc
    }

    /// Rank-store SRAM area: `capacity · (rank + meta)` bits (Table 1).
    pub fn rank_store_mm2(&self, cfg: &BlockConfig) -> f64 {
        let bits = cfg.rank_store_capacity as f64 * (cfg.rank_bits + cfg.meta_bits) as f64;
        bits / 1_048_576.0 * SRAM_MM2_PER_MBIT
    }

    /// Next-pointer SRAM for the linked lists (16-bit pointers, Table 1).
    pub fn next_pointers_mm2(&self, cfg: &BlockConfig) -> f64 {
        let bits = cfg.rank_store_capacity as f64 * 16.0;
        bits / 1_048_576.0 * SRAM_MM2_PER_MBIT
    }

    /// Free-list SRAM (16-bit pointers, Table 1).
    pub fn free_list_mm2(&self, cfg: &BlockConfig) -> f64 {
        self.next_pointers_mm2(cfg)
    }

    /// Head/tail/count state per flow (Table 1 reports 0.1476 mm² from
    /// synthesis at the baseline; modelled as 3 pointers + count per
    /// flow in flip-flops priced via the store coefficient).
    ///
    /// Calibrated directly to the published number at the baseline and
    /// scaled linearly in flows and pointer width.
    pub fn head_tail_count_mm2(&self, cfg: &BlockConfig) -> f64 {
        const BASELINE: f64 = 0.1476; // 1024 flows, 16-bit pointers
        let ptr_bits = ((cfg.rank_store_capacity as u64)
            .next_power_of_two()
            .trailing_zeros() as f64)
            .max(1.0);
        BASELINE * (cfg.n_flows as f64 / 1024.0) * (ptr_bits / 16.0)
    }

    /// One full PIFO block (Table 1's "One PIFO block" row).
    pub fn block_mm2(&self, cfg: &BlockConfig) -> f64 {
        self.flow_scheduler_mm2(cfg)
            + self.rank_store_mm2(cfg)
            + self.next_pointers_mm2(cfg)
            + self.free_list_mm2(cfg)
            + self.head_tail_count_mm2(cfg)
    }

    /// A mesh of `n` blocks, excluding atoms.
    pub fn mesh_mm2(&self, cfg: &BlockConfig, n_blocks: usize) -> f64 {
        self.block_mm2(cfg) * n_blocks as f64
    }

    /// Atom pipeline area for `n_atoms` Pairs atoms.
    pub fn atoms_mm2(&self, n_atoms: usize) -> f64 {
        n_atoms as f64 * ATOM_AREA_UM2 / 1e6
    }

    /// Total overhead fraction of a mesh relative to [`CHIP_AREA_MM2`].
    pub fn overhead_fraction(&self, cfg: &BlockConfig, n_blocks: usize, n_atoms: usize) -> f64 {
        (self.mesh_mm2(cfg, n_blocks) + self.atoms_mm2(n_atoms)) / CHIP_AREA_MM2
    }
}

/// Timing model: does a flow scheduler of this size meet 1 GHz?
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// Cycle budget in ps at 1 GHz.
    pub cycle_ps: f64,
    /// Comparator delay (depends on rank width): ps per log2(rank_bits).
    pub cmp_ps_per_level: f64,
    /// Priority-encoder delay: ps per log2(flows) level, including the
    /// broadcast/wire cost of the parallel compare.
    pub enc_ps_per_level: f64,
    /// Fixed clock/setup overhead, ps.
    pub fixed_ps: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        // Calibrated to the Table 2 cliff: 2048 flows meet timing at
        // 1 GHz, 4096 do not. With rank=16b: depth(2048)=11 levels,
        // depth(4096)=12; comparator log2(16)=4 levels.
        TimingModel {
            cycle_ps: 1_000.0,
            cmp_ps_per_level: 40.0,
            enc_ps_per_level: 70.0,
            fixed_ps: 60.0,
        }
    }
}

impl TimingModel {
    /// Critical-path estimate in ps.
    pub fn critical_path_ps(&self, cfg: &BlockConfig) -> f64 {
        let cmp_levels = (cfg.rank_bits as f64).log2().ceil();
        let enc_levels = (cfg.n_flows as f64).log2().ceil();
        self.fixed_ps + self.cmp_ps_per_level * cmp_levels + self.enc_ps_per_level * enc_levels
    }

    /// Whether `cfg` meets timing at 1 GHz (Table 2's last column).
    pub fn meets_1ghz(&self, cfg: &BlockConfig) -> bool {
        self.critical_path_ps(cfg) <= self.cycle_ps
    }
}

/// Solve a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Panics on a singular system (cannot happen with the fixed
/// calibration set).
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let piv = (col..3)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("rows");
        a.swap(col, piv);
        b.swap(col, piv);
        assert!(a[col][col].abs() > 1e-18, "singular calibration system");
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            #[allow(clippy::needless_range_loop)] // rows `row` and `col` alias the same matrix
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut v = b[row];
        for k in (row + 1)..3 {
            v -= a[row][k] * x[k];
        }
        x[row] = v / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> BlockConfig {
        BlockConfig::default()
    }

    fn cfg_flows(n: usize) -> BlockConfig {
        BlockConfig {
            n_flows: n,
            ..BlockConfig::default()
        }
    }

    #[test]
    fn calibration_reproduces_table2_points() {
        let m = AreaModel::calibrated();
        for (flows, want) in [
            (256usize, 0.053),
            (512, 0.107),
            (1024, 0.224),
            (2048, 0.454),
            (4096, 0.914),
        ] {
            let got = m.flow_scheduler_mm2(&cfg_flows(flows));
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.08,
                "flow scheduler at {flows} flows: got {got:.3}, want {want:.3}"
            );
        }
    }

    #[test]
    fn calibration_reproduces_sensitivities() {
        let m = AreaModel::calibrated();
        // rank 32 bits -> 0.317
        let got = m.flow_scheduler_mm2(&BlockConfig {
            rank_bits: 32,
            ..baseline()
        });
        assert!((got - 0.317).abs() / 0.317 < 0.10, "rank32: {got:.3}");
        // meta 64 bits -> 0.317
        let got = m.flow_scheduler_mm2(&BlockConfig {
            meta_bits: 64,
            ..baseline()
        });
        assert!((got - 0.317).abs() / 0.317 < 0.10, "meta64: {got:.3}");
        // 1024 logical PIFOs -> 0.233
        let got = m.flow_scheduler_mm2(&BlockConfig {
            n_logical_pifos: 1024,
            ..baseline()
        });
        assert!((got - 0.233).abs() / 0.233 < 0.10, "lpifo1024: {got:.3}");
    }

    #[test]
    fn rank_store_matches_table1() {
        let m = AreaModel::calibrated();
        // 64K * 48 bits * 0.145 mm2/Mbit = 0.435 (paper rounds to 0.445
        // using 1e6 bits per Mbit; we accept either convention within 3%).
        let got = m.rank_store_mm2(&baseline());
        assert!((got - 0.445).abs() / 0.445 < 0.05, "rank store: {got:.3}");
    }

    #[test]
    fn pointer_memories_match_table1() {
        let m = AreaModel::calibrated();
        let got = m.next_pointers_mm2(&baseline());
        assert!((got - 0.148).abs() / 0.148 < 0.05, "next ptrs: {got:.3}");
        assert!((m.free_list_mm2(&baseline()) - got).abs() < 1e-12);
    }

    #[test]
    fn block_and_mesh_match_table1() {
        let m = AreaModel::calibrated();
        let block = m.block_mm2(&baseline());
        assert!((block - 1.11).abs() / 1.11 < 0.05, "block: {block:.3}");
        let mesh = m.mesh_mm2(&baseline(), 5);
        assert!((mesh - 5.55).abs() / 5.55 < 0.05, "mesh: {mesh:.3}");
        let atoms = m.atoms_mm2(MESH_ATOMS);
        assert!((atoms - 1.8).abs() < 1e-9, "atoms: {atoms:.3}");
        let overhead = m.overhead_fraction(&baseline(), 5, MESH_ATOMS);
        assert!(
            (overhead - 0.037).abs() < 0.003,
            "overhead: {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn area_scales_linearly_in_flows() {
        let m = AreaModel::calibrated();
        let a1 = m.flow_scheduler_mm2(&cfg_flows(512));
        let a2 = m.flow_scheduler_mm2(&cfg_flows(1024));
        let ratio = a2 / a1;
        assert!(
            (ratio - 2.0).abs() < 0.15,
            "doubling flows ~doubles area: {ratio:.2}"
        );
    }

    #[test]
    fn timing_cliff_matches_table2() {
        let t = TimingModel::default();
        for flows in [256usize, 512, 1024, 2048] {
            assert!(t.meets_1ghz(&cfg_flows(flows)), "{flows} must meet timing");
        }
        assert!(!t.meets_1ghz(&cfg_flows(4096)), "4096 must fail timing");
    }

    #[test]
    fn wider_ranks_slow_the_comparator() {
        let t = TimingModel::default();
        let narrow = t.critical_path_ps(&baseline());
        let wide = t.critical_path_ps(&BlockConfig {
            rank_bits: 64,
            ..baseline()
        });
        assert!(wide > narrow);
    }

    #[test]
    fn solve3_inverts_identity() {
        let x = solve3(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            [3.0, 4.0, 5.0],
        );
        assert_eq!(x, [3.0, 4.0, 5.0]);
    }

    #[test]
    fn solve3_general_system() {
        // A * [1, 2, 3] with A below.
        let a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        let b = [4.0, 10.0, 14.0];
        let x = solve3(a, b);
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
