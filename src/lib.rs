//! # pifo — Programmable Packet Scheduling at Line Rate
//!
//! Umbrella crate re-exporting the full reproduction of the SIGCOMM 2016
//! PIFO paper:
//!
//! * [`core`] (`pifo-core`) — the push-in first-out queue and the
//!   scheduling/shaping transaction tree programming model (§2);
//! * [`algos`] (`pifo-algos`) — every algorithm the paper programs on
//!   PIFOs: STFQ/WFQ, HPFQ, token buckets, LSTF, Stop-and-Go, min-rate
//!   guarantees, SJF/SRPT/LAS/EDF, SC-EDF, RCSD, CBQ (§2–§3);
//! * [`domino`] (`domino-lite`) — the transaction language and atom
//!   pipeline compiler substrate (§4.1);
//! * [`hw`] (`pifo-hw`) — the flow-scheduler/rank-store block and PIFO
//!   mesh hardware model (§4.2, §5.2);
//! * [`compiler`] (`pifo-compiler`) — scheduling trees → mesh
//!   configurations (§4.3, Figs 10–11);
//! * [`sim`] (`pifo-sim`) — deterministic network simulation: traffic,
//!   ports, the multi-port switch fabric, baselines, metrics;
//! * [`synth`] (`pifo-synth`) — the calibrated 16 nm area/timing model
//!   regenerating Tables 1–2 and the §5.4 wiring analysis.
//!
//! See `examples/quickstart.rs` for a five-minute tour, `ARCHITECTURE.md`
//! for the crate map and data flow, and `cargo run -p pifo-bench --bin
//! repro --release -- list` for the index of paper experiments.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use domino_lite as domino;
pub use pifo_algos as algos;
pub use pifo_compiler as compiler;
pub use pifo_core as core;
pub use pifo_hw as hw;
pub use pifo_sim as sim;
pub use pifo_synth as synth;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use pifo_algos::{
        build_cbq, build_min_rate_tree, charge_wait, fig3_hpfq, CbqClass, Edf, Fifo, Hierarchy,
        Las, Lstf, MinRateGuarantee, ScEdf, ServiceCurve, Sjf, Srpt, Stfq, StopAndGo,
        StrictPriority, TokenBucketFilter, WeightTable,
    };
    pub use pifo_core::prelude::*;
    pub use pifo_sim::{
        flow_workload, jain_index, latency_stats, merge, renumber, run_pipeline, run_port,
        throughput, CbrSource, Departure, DrainMode, DrrSched, FabricStall, FaultPlan, FifoSched,
        FluidGps, Hop, IncastSource, LosslessConfig, LosslessFabric, LosslessRun,
        MarkovOnOffSource, PFabricQueue, PauseAction, PauseEvent, PoissonSource, PortConfig,
        PortScheduler, SizeDistribution, SourcePauseStats, StallKind, StrictPrioritySched, Switch,
        SwitchBuilder, SwitchRun, TrafficSource, TreeScheduler, Watermarks,
    };
}
